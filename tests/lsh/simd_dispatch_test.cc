// The dispatch bit-identity suite: every SIMD width of the hashing kernels
// must be indistinguishable from scalar — same kernel outputs, same bucket
// keys, same index structure, same estimates, same snapshots. This is the
// contract that makes runtime dispatch (util/cpu.h) a pure throughput
// knob, and it is what the golden CLI fixtures rely on across machines
// with different vector units. CI runs this suite twice: once with default
// dispatch and once under VSJ_FORCE_SCALAR=1.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iterator>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "test_util.h"
#include "vsj/core/estimator_registry.h"
#include "vsj/lsh/gaussian_projection_cache.h"
#include "vsj/lsh/lsh_index.h"
#include "vsj/lsh/lsh_table.h"
#include "vsj/lsh/minhash.h"
#include "vsj/lsh/simhash.h"
#include "vsj/lsh/simhash_kernel.h"
#include "vsj/service/streaming_estimation_service.h"
#include "vsj/util/cpu.h"
#include "vsj/util/hash.h"
#include "vsj/util/rng.h"

namespace vsj {
namespace {

constexpr uint64_t kSeed = 0x51adbeefULL;

/// The levels the host can actually run (always includes kScalar).
std::vector<SimdLevel> SupportedLevels() {
  std::vector<SimdLevel> levels = {SimdLevel::kScalar};
  const SimdLevel detected = DetectSimdLevel();
  if (detected >= SimdLevel::kSse2) levels.push_back(SimdLevel::kSse2);
  if (detected >= SimdLevel::kAvx2) levels.push_back(SimdLevel::kAvx2);
  return levels;
}

/// Runs `body` under every supported level and returns one result per
/// level, resetting the dispatch override afterwards.
template <typename Body>
auto RunAtEveryLevel(Body&& body)
    -> std::vector<decltype(body())> {
  std::vector<decltype(body())> results;
  for (const SimdLevel level : SupportedLevels()) {
    EXPECT_EQ(SetSimdLevelForTest(level), level)
        << "host cannot force " << SimdLevelName(level);
    results.push_back(body());
  }
  ResetSimdLevelForTest();
  return results;
}

TEST(SimdDispatchTest, AccumulateKernelMatchesScalarBitwise) {
  Rng rng(kSeed);
  for (const uint32_t k : {1u, 2u, 3u, 4u, 5u, 7u, 8u, 10u, 13u, 31u}) {
    std::vector<double> gaussians(k);
    for (double& g : gaussians) g = GaussianFromHash(rng.Next(), kSeed);
    const double weight = rng.NextDouble() * 3.0 - 1.5;
    const auto accs = RunAtEveryLevel([&] {
      std::vector<double> acc(k, 0.25);
      // Three folds so lanes accumulate rounding history, not one product.
      for (int round = 0; round < 3; ++round) {
        AccumulateProjectionLanes(gaussians.data(), weight + round,
                                  acc.data(), k);
      }
      return acc;
    });
    for (size_t l = 1; l < accs.size(); ++l) {
      ASSERT_EQ(accs[l], accs[0]) << "k=" << k << " level " << l;
    }
  }
}

TEST(SimdDispatchTest, MinFoldKernelMatchesScalarBitwise) {
  Rng rng(kSeed ^ 1);
  for (const uint32_t k : {1u, 2u, 3u, 4u, 5u, 7u, 8u, 10u, 13u, 31u}) {
    std::vector<uint64_t> terms(k);
    for (uint64_t& t : terms) t = rng.Next();
    std::vector<uint64_t> keys(17);
    for (uint64_t& key : keys) key = rng.Next();
    const auto mins = RunAtEveryLevel([&] {
      std::vector<uint64_t> fold(k, ~uint64_t{0});
      for (const uint64_t key : keys) {
        MinFoldLanes(key, terms.data(), fold.data(), k);
      }
      return fold;
    });
    for (size_t l = 1; l < mins.size(); ++l) {
      ASSERT_EQ(mins[l], mins[0]) << "k=" << k << " level " << l;
    }
  }
}

TEST(SimdDispatchTest, MinFoldTermAlgebraMatchesHashCombine) {
  // The lane fold computes Mix64(Mix64(key) + seed·γ + 1); this must be
  // exactly HashCombine(key, seed), or MinHash's kernel path silently
  // diverges from the family's definition if HashCombine ever changes.
  Rng rng(kSeed ^ 9);
  for (const SimdLevel level : SupportedLevels()) {
    SetSimdLevelForTest(level);
    for (int i = 0; i < 500; ++i) {
      const uint64_t key = rng.Next();
      const uint64_t seed = rng.Next();
      const uint64_t term = seed * kHashCombineGamma + 1;
      uint64_t fold = ~uint64_t{0};
      MinFoldLanes(Mix64(key), &term, &fold, 1);
      ASSERT_EQ(fold, HashCombine(key, seed));
    }
  }
  ResetSimdLevelForTest();
}

TEST(SimdDispatchTest, BucketKeysIdenticalAcrossLevelsAndFamilies) {
  const VectorDataset dataset = testing::SmallClusteredCorpus(240, 11);
  const DatasetView view(dataset);
  const SimHashFamily simhash(kSeed);
  const MinHashFamily minhash(kSeed ^ 2);
  for (const LshFamily* family :
       std::vector<const LshFamily*>{&simhash, &minhash}) {
    const auto keys = RunAtEveryLevel([&] {
      std::vector<uint64_t> out(view.size());
      LshTable::ComputeBucketKeys(*family, view, 9, 3, 0,
                                  static_cast<VectorId>(view.size()),
                                  out.data());
      return out;
    });
    for (size_t l = 1; l < keys.size(); ++l) {
      ASSERT_EQ(keys[l], keys[0]) << family->name() << " level " << l;
    }
  }
}

TEST(SimdDispatchTest, ProjectionCacheDoesNotChangeBucketKeys) {
  const VectorDataset dataset = testing::SmallClusteredCorpus(240, 13);
  const DatasetView view(dataset);
  const SimHashFamily family(kSeed ^ 3);
  constexpr uint32_t kK = 8;
  constexpr uint32_t kTables = 3;

  const auto cache =
      family.MakeProjectionCache(view, kK * kTables, nullptr);
  ASSERT_NE(cache, nullptr);
  ASSERT_TRUE(cache->sealed());
  ASSERT_GT(cache->num_dims(), 0u);

  for (const SimdLevel level : SupportedLevels()) {
    SetSimdLevelForTest(level);
    for (uint32_t t = 0; t < kTables; ++t) {
      std::vector<uint64_t> uncached(view.size());
      std::vector<uint64_t> cached(view.size());
      HashScratch plain;
      LshTable::ComputeBucketKeys(family, view, kK, t * kK, 0,
                                  static_cast<VectorId>(view.size()),
                                  uncached.data(), plain);
      HashScratch with_cache;
      with_cache.gaussian_cache = cache.get();
      LshTable::ComputeBucketKeys(family, view, kK, t * kK, 0,
                                  static_cast<VectorId>(view.size()),
                                  cached.data(), with_cache);
      ASSERT_EQ(cached, uncached)
          << SimdLevelName(level) << " table " << t;
    }
  }
  ResetSimdLevelForTest();
}

TEST(SimdDispatchTest, ProjectionCacheRowsHoldExactGaussians) {
  const VectorDataset dataset = testing::SmallClusteredCorpus(120, 17);
  const SimHashFamily family(kSeed ^ 4);
  constexpr uint32_t kFns = 12;
  const auto cache =
      family.MakeProjectionCache(DatasetView(dataset), kFns, nullptr);
  ASSERT_NE(cache, nullptr);
  const uint64_t mixed_seed = Mix64(kSeed ^ 4);
  size_t rows_checked = 0;
  for (VectorRef v : DatasetView(dataset)) {
    for (const Feature f : v) {
      const double* row = cache->Row(f.dim);
      ASSERT_NE(row, nullptr) << "dim " << f.dim;
      for (uint32_t fn = 0; fn < kFns; ++fn) {
        ASSERT_EQ(row[fn],
                  GaussianFromHash(f.dim, HashCombine(mixed_seed, fn)));
      }
      ++rows_checked;
    }
  }
  ASSERT_GT(rows_checked, 0u);
  // A dimension no vector carries must miss.
  EXPECT_EQ(cache->Row(0x7fffffff), nullptr);
}

TEST(SimdDispatchTest, AllRegistryEstimatorsBitIdenticalAcrossLevels) {
  const VectorDataset dataset = testing::SmallClusteredCorpus(300, 7);
  const SimHashFamily family(kSeed ^ 5);
  for (const std::string& name : AllEstimatorNames()) {
    const auto results = RunAtEveryLevel([&] {
      // Index built under the forced level; estimation itself never
      // dispatches, so divergence here means the build diverged.
      const LshIndex index(family, dataset, 8, 2);
      EstimatorContext context;
      context.dataset = DatasetView(dataset);
      context.index = &index;
      context.measure = SimilarityMeasure::kCosine;
      const auto estimator = CreateEstimator(name, context);
      std::vector<double> estimates;
      for (const double tau : {0.3, 0.6, 0.9}) {
        Rng rng(kSeed ^ static_cast<uint64_t>(tau * 1024));
        estimates.push_back(estimator->Estimate(tau, rng).estimate);
      }
      return estimates;
    });
    for (size_t l = 1; l < results.size(); ++l) {
      ASSERT_EQ(results[l], results[0]) << name << " level " << l;
    }
  }
}

/// Streaming path: churn a service under each level, checkpoint it, and
/// require byte-identical snapshot files — the strongest "nothing about
/// the index differs" statement the persistence layer can make.
TEST(SimdDispatchTest, StreamingSnapshotsByteIdenticalAcrossLevels) {
  const auto snapshot_bytes = [&](SimdLevel level, const std::string& path) {
    SetSimdLevelForTest(level);
    StreamingEstimationServiceOptions options;
    options.k = 6;
    options.num_tables = 2;
    options.family_seed = kSeed ^ 6;
    StreamingEstimationService service(
        testing::SmallClusteredCorpus(200, 23), options);
    for (VectorId id = 0; id < 160; ++id) service.Insert(id);
    for (VectorId id = 0; id < 40; ++id) service.Remove(id * 3);
    EXPECT_EQ(service.Checkpoint(path).ok(), true);
    ResetSimdLevelForTest();
    std::ifstream is(path, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(is), {});
  };
  const std::string dir = ::testing::TempDir();
  const std::string reference =
      snapshot_bytes(SimdLevel::kScalar, dir + "/dispatch_scalar.vsjs");
  ASSERT_FALSE(reference.empty());
  for (const SimdLevel level : SupportedLevels()) {
    if (level == SimdLevel::kScalar) continue;
    const std::string path = dir + "/dispatch_" +
                             std::string(SimdLevelName(level)) + ".vsjs";
    ASSERT_EQ(snapshot_bytes(level, path), reference)
        << SimdLevelName(level);
    std::remove(path.c_str());
  }
  std::remove((dir + "/dispatch_scalar.vsjs").c_str());
}

TEST(SimdDispatchTest, EnvOverridesAreHonored) {
  // The test can only assert the in-process override layer; the env layer
  // is exercised by the CI leg that reruns this binary under
  // VSJ_FORCE_SCALAR=1 (ActiveSimdLevel must then report scalar).
  const char* forced = std::getenv("VSJ_FORCE_SCALAR");
  if (forced != nullptr && forced[0] == '1') {
    EXPECT_EQ(ActiveSimdLevel(), SimdLevel::kScalar);
  }
  EXPECT_LE(ActiveSimdLevel(), DetectSimdLevel());
  EXPECT_EQ(SetSimdLevelForTest(SimdLevel::kScalar), SimdLevel::kScalar);
  EXPECT_EQ(ActiveSimdLevel(), SimdLevel::kScalar);
  ResetSimdLevelForTest();
}

}  // namespace
}  // namespace vsj
