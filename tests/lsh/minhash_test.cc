#include "vsj/lsh/minhash.h"

#include "vsj/vector/sparse_vector.h"

#include <vector>

#include <gtest/gtest.h>

#include "vsj/util/rng.h"
#include "vsj/vector/similarity.h"

namespace vsj {
namespace {

TEST(MinHashTest, DeterministicAcrossCalls) {
  MinHashFamily family(1);
  SparseVector v = SparseVector::FromDims({1, 5, 9});
  EXPECT_EQ(family.Hash(v, 3), family.Hash(v, 3));
}

TEST(MinHashTest, HashRangeMatchesSingleHashes) {
  MinHashFamily family(2);
  SparseVector v = SparseVector::FromDims({2, 4, 6, 8});
  std::vector<uint64_t> batch(8);
  family.HashRange(v, 5, 8, batch.data());
  for (uint32_t j = 0; j < 8; ++j) {
    EXPECT_EQ(batch[j], family.Hash(v, 5 + j));
  }
}

TEST(MinHashTest, IdenticalSetsAlwaysCollide) {
  MinHashFamily family(3);
  SparseVector a = SparseVector::FromDims({1, 2, 3});
  SparseVector b = SparseVector::FromDims({3, 2, 1});
  for (uint32_t j = 0; j < 32; ++j) {
    EXPECT_EQ(family.Hash(a, j), family.Hash(b, j));
  }
}

TEST(MinHashTest, DisjointSetsRarelyCollide) {
  MinHashFamily family(4);
  SparseVector a = SparseVector::FromDims({1, 2, 3, 4, 5});
  SparseVector b = SparseVector::FromDims({10, 11, 12, 13, 14});
  int collisions = 0;
  for (uint32_t j = 0; j < 256; ++j) {
    collisions += family.Hash(a, j) == family.Hash(b, j) ? 1 : 0;
  }
  EXPECT_EQ(collisions, 0);
}

TEST(MinHashTest, CollisionProbabilityIsIdentity) {
  MinHashFamily family(0);
  EXPECT_DOUBLE_EQ(family.CollisionProbability(0.0), 0.0);
  EXPECT_DOUBLE_EQ(family.CollisionProbability(0.37), 0.37);
  EXPECT_DOUBLE_EQ(family.CollisionProbability(1.0), 1.0);
  // Clamped outside [0, 1].
  EXPECT_DOUBLE_EQ(family.CollisionProbability(1.5), 1.0);
}

TEST(MinHashTest, MeasureAndName) {
  MinHashFamily family(0);
  EXPECT_EQ(family.measure(), SimilarityMeasure::kJaccard);
  EXPECT_STREQ(family.name(), "minhash");
  EXPECT_DOUBLE_EQ(family.resolution(), 1.0);
}

// Definition 3 of the paper, verified empirically: P(h(A)=h(B)) = J(A,B).
class MinHashCollisionTest
    : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(MinHashCollisionTest, EmpiricalRateMatchesJaccard) {
  const auto [shared, extra_each] = GetParam();
  std::vector<DimId> a_dims, b_dims;
  for (int i = 0; i < shared; ++i) {
    a_dims.push_back(i);
    b_dims.push_back(i);
  }
  for (int i = 0; i < extra_each; ++i) {
    a_dims.push_back(1000 + i);
    b_dims.push_back(2000 + i);
  }
  SparseVector a = SparseVector::FromDims(a_dims);
  SparseVector b = SparseVector::FromDims(b_dims);
  const double jaccard = JaccardSimilarity(a, b);

  MinHashFamily family(1234);
  const uint32_t k = 4000;
  std::vector<uint64_t> ha(k), hb(k);
  family.HashRange(a, 0, k, ha.data());
  family.HashRange(b, 0, k, hb.data());
  uint32_t collisions = 0;
  for (uint32_t j = 0; j < k; ++j) collisions += ha[j] == hb[j] ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(collisions) / k, jaccard, 0.03);
}

INSTANTIATE_TEST_SUITE_P(Overlaps, MinHashCollisionTest,
                         ::testing::Values(std::pair{10, 0},   // J = 1
                                           std::pair{8, 2},    // J = 2/3
                                           std::pair{5, 5},    // J = 1/3
                                           std::pair{2, 8},    // J = 1/9
                                           std::pair{1, 20}));

TEST(MinHashWeightedTest, WeightedCollisionTracksEmbeddedJaccard) {
  // Weighted vectors via the 0.5-resolution embedding.
  MinHashFamily family(7, 0.5);
  SparseVector a({{1, 2.0f}, {2, 1.0f}});
  SparseVector b({{1, 1.0f}, {2, 1.0f}});
  const uint32_t k = 4000;
  std::vector<uint64_t> ha(k), hb(k);
  family.HashRange(a, 0, k, ha.data());
  family.HashRange(b, 0, k, hb.data());
  uint32_t collisions = 0;
  for (uint32_t j = 0; j < k; ++j) collisions += ha[j] == hb[j] ? 1 : 0;
  // Embedded multisets: a -> {1:4 copies, 2:2}, b -> {1:2, 2:2};
  // intersection 4, union 6.
  EXPECT_NEAR(static_cast<double>(collisions) / k, 4.0 / 6.0, 0.03);
}

TEST(MinHashDeathTest, RejectsNonPositiveResolution) {
  EXPECT_DEATH(MinHashFamily(0, 0.0), "CHECK");
}

}  // namespace
}  // namespace vsj
