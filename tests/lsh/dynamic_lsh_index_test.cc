#include "vsj/lsh/dynamic_lsh_index.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "test_util.h"

namespace vsj {
namespace {

TEST(DynamicLshIndexTest, TablesUseDistinctFunctionRanges) {
  VectorDataset dataset = testing::SmallClusteredCorpus(200, 11);
  SimHashFamily family(12);
  DynamicLshIndex index(family, 8, 3);
  ASSERT_EQ(index.num_tables(), 3u);
  for (VectorId id = 0; id < dataset.size(); ++id) {
    index.Insert(id, dataset[id]);
  }

  // Each table must reproduce the partition of the corresponding static
  // index table (same family, k, function ranges [t·k, (t+1)·k)).
  const LshIndex expected(family, dataset, 8, 3);
  for (uint32_t t = 0; t < 3; ++t) {
    const DynamicLshTable& dynamic = index.table(t);
    const LshTable& fixed = expected.table(t);
    EXPECT_EQ(dynamic.NumSameBucketPairs(), fixed.NumSameBucketPairs()) << t;
    EXPECT_EQ(dynamic.num_buckets(), fixed.num_buckets()) << t;
  }
  // Different function ranges almost surely produce different partitions.
  EXPECT_NE(index.table(0).NumSameBucketPairs() +
                index.table(1).NumSameBucketPairs() +
                index.table(2).NumSameBucketPairs(),
            3 * index.table(0).NumSameBucketPairs());
}

TEST(DynamicLshIndexTest, InsertRemoveKeepsEveryTableAndLiveListInSync) {
  VectorDataset dataset = testing::SmallClusteredCorpus(150, 13);
  SimHashFamily family(14);
  DynamicLshIndex index(family, 6, 2);
  Rng rng(15);
  std::vector<bool> present(dataset.size(), false);
  size_t live = 0;
  for (int op = 0; op < 2000; ++op) {
    const auto id = static_cast<VectorId>(rng.Below(dataset.size()));
    if (present[id]) {
      index.Remove(id);
      --live;
    } else {
      index.Insert(id, dataset[id]);
      ++live;
    }
    present[id] = !present[id];
    ASSERT_EQ(index.num_vectors(), live);
    for (uint32_t t = 0; t < index.num_tables(); ++t) {
      ASSERT_EQ(index.table(t).num_vectors(), live);
    }
  }
  // The live list holds exactly the present ids, each once.
  std::vector<VectorId> ids = index.live_ids();
  std::sort(ids.begin(), ids.end());
  EXPECT_TRUE(std::adjacent_find(ids.begin(), ids.end()) == ids.end());
  for (VectorId id : ids) EXPECT_TRUE(present[id]);
  EXPECT_EQ(ids.size(), live);
  for (VectorId id = 0; id < dataset.size(); ++id) {
    EXPECT_EQ(index.Contains(id), static_cast<bool>(present[id])) << id;
  }
}

TEST(DynamicLshIndexTest, SameBucketInAnyTableMatchesStaticIndex) {
  VectorDataset dataset = testing::SmallClusteredCorpus(120, 17);
  SimHashFamily family(18);
  DynamicLshIndex index(family, 6, 2);
  for (VectorId id = 0; id < dataset.size(); ++id) {
    index.Insert(id, dataset[id]);
  }
  const LshIndex expected(family, dataset, 6, 2);
  for (VectorId u = 0; u < dataset.size(); ++u) {
    for (VectorId v = u + 1; v < dataset.size(); ++v) {
      ASSERT_EQ(index.SameBucketInAnyTable(u, v),
                expected.SameBucketInAnyTable(u, v))
          << u << "," << v;
    }
  }
  // Non-live ids never share a bucket.
  index.Remove(0);
  EXPECT_FALSE(index.SameBucketInAnyTable(0, 1));
}

TEST(DynamicLshIndexTest, SampleLiveIdCoversExactlyTheLiveSet) {
  VectorDataset dataset = testing::SmallClusteredCorpus(40, 19);
  SimHashFamily family(20);
  DynamicLshIndex index(family, 6, 1);
  for (VectorId id = 0; id < 20; ++id) index.Insert(id, dataset[id]);
  for (VectorId id = 0; id < 10; ++id) index.Remove(id);
  Rng rng(21);
  std::vector<int> hits(dataset.size(), 0);
  for (int draw = 0; draw < 5000; ++draw) {
    const VectorId id = index.SampleLiveId(rng);
    ASSERT_GE(id, 10u);
    ASSERT_LT(id, 20u);
    ++hits[id];
  }
  for (VectorId id = 10; id < 20; ++id) EXPECT_GT(hits[id], 0) << id;
}

}  // namespace
}  // namespace vsj
