#include "vsj/lsh/simhash.h"

#include "vsj/vector/sparse_vector.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "vsj/util/rng.h"
#include "vsj/vector/similarity.h"

namespace vsj {
namespace {

SparseVector RandomVector(Rng& rng, int dims, int len) {
  std::vector<Feature> features;
  for (int i = 0; i < len; ++i) {
    features.push_back(
        Feature{static_cast<DimId>(rng.Below(dims)),
                static_cast<float>(0.1 + rng.NextDouble())});
  }
  return SparseVector(std::move(features));
}

TEST(SimHashTest, HashValuesAreBits) {
  SimHashFamily family(1);
  Rng rng(2);
  SparseVector v = RandomVector(rng, 100, 10);
  for (uint32_t j = 0; j < 50; ++j) {
    const uint64_t h = family.Hash(v, j);
    EXPECT_TRUE(h == 0 || h == 1);
  }
}

TEST(SimHashTest, DeterministicAcrossCalls) {
  SimHashFamily family(3);
  Rng rng(4);
  SparseVector v = RandomVector(rng, 100, 10);
  EXPECT_EQ(family.Hash(v, 5), family.Hash(v, 5));
}

TEST(SimHashTest, HashRangeMatchesSingleHashes) {
  SimHashFamily family(5);
  Rng rng(6);
  SparseVector v = RandomVector(rng, 200, 15);
  std::vector<uint64_t> batch(10);
  family.HashRange(v, 3, 10, batch.data());
  for (uint32_t j = 0; j < 10; ++j) {
    EXPECT_EQ(batch[j], family.Hash(v, 3 + j)) << "function " << j;
  }
}

TEST(SimHashTest, ScaleInvariance) {
  // sign(r·v) is invariant to positive scaling of v.
  SimHashFamily family(7);
  SparseVector v({{1, 1.0f}, {5, 2.0f}, {9, 0.5f}});
  SparseVector w({{1, 3.0f}, {5, 6.0f}, {9, 1.5f}});
  std::vector<uint64_t> hv(64), hw(64);
  family.HashRange(v, 0, 64, hv.data());
  family.HashRange(w, 0, 64, hw.data());
  EXPECT_EQ(hv, hw);
}

TEST(SimHashTest, CollisionProbabilityCurve) {
  SimHashFamily family(0);
  EXPECT_NEAR(family.CollisionProbability(1.0), 1.0, 1e-12);
  EXPECT_NEAR(family.CollisionProbability(0.0), 0.5, 1e-12);
  EXPECT_NEAR(family.CollisionProbability(-1.0), 0.0, 1e-12);
  // Monotone increasing.
  double prev = -1.0;
  for (double s = -1.0; s <= 1.0; s += 0.05) {
    const double p = family.CollisionProbability(s);
    EXPECT_GE(p, prev);
    prev = p;
  }
}

TEST(SimHashTest, MeasureAndName) {
  SimHashFamily family(0);
  EXPECT_EQ(family.measure(), SimilarityMeasure::kCosine);
  EXPECT_STREQ(family.name(), "simhash");
}

TEST(SimHashTest, DifferentSeedsGiveDifferentFunctions) {
  SimHashFamily a(1), b(2);
  Rng rng(8);
  int diffs = 0;
  for (int trial = 0; trial < 64; ++trial) {
    SparseVector v = RandomVector(rng, 100, 8);
    diffs += a.Hash(v, 0) != b.Hash(v, 0) ? 1 : 0;
  }
  EXPECT_GT(diffs, 8);  // ~50% expected
}

// The defining LSH property: empirical collision rate ≈ 1 − θ/π.
class SimHashCollisionTest : public ::testing::TestWithParam<double> {};

TEST_P(SimHashCollisionTest, EmpiricalRateMatchesAngularSimilarity) {
  const double target_cos = GetParam();
  // Two 2-dense vectors with a controlled angle: u = (1, 0), v = (c, s).
  const double angle = std::acos(target_cos);
  SparseVector u({{0, 1.0f}});
  SparseVector v({{0, static_cast<float>(std::cos(angle))},
                  {1, static_cast<float>(std::sin(angle))}});
  ASSERT_NEAR(CosineSimilarity(u, v), target_cos, 1e-5);

  SimHashFamily family(99);
  const uint32_t k = 4000;
  std::vector<uint64_t> hu(k), hv(k);
  family.HashRange(u, 0, k, hu.data());
  family.HashRange(v, 0, k, hv.data());
  uint32_t collisions = 0;
  for (uint32_t j = 0; j < k; ++j) collisions += hu[j] == hv[j] ? 1 : 0;
  const double empirical = static_cast<double>(collisions) / k;
  EXPECT_NEAR(empirical, family.CollisionProbability(target_cos), 0.03);
}

INSTANTIATE_TEST_SUITE_P(Angles, SimHashCollisionTest,
                         ::testing::Values(0.0, 0.3, 0.5, 0.7, 0.9, 0.99));

}  // namespace
}  // namespace vsj
