#include "vsj/lsh/lsh_index.h"

#include <gtest/gtest.h>

#include "vsj/gen/workloads.h"
#include "vsj/lsh/simhash.h"

namespace vsj {
namespace {

TEST(LshIndexTest, BuildsRequestedNumberOfTables) {
  VectorDataset dataset = GenerateCorpus(DblpLikeConfig(200, 1));
  SimHashFamily family(2);
  LshIndex index(family, dataset, 8, 4);
  EXPECT_EQ(index.num_tables(), 4u);
  EXPECT_EQ(index.k(), 8u);
  for (uint32_t t = 0; t < 4; ++t) {
    EXPECT_EQ(index.table(t).num_vectors(), dataset.size());
  }
}

TEST(LshIndexTest, TablesAreIndependent) {
  VectorDataset dataset = GenerateCorpus(DblpLikeConfig(300, 3));
  SimHashFamily family(4);
  LshIndex index(family, dataset, 6, 3);
  // At least one pair must be stratified differently across tables.
  bool differs = false;
  for (VectorId u = 0; u < 100 && !differs; ++u) {
    for (VectorId v = u + 1; v < 100 && !differs; ++v) {
      const bool b0 = index.table(0).SameBucket(u, v);
      const bool b1 = index.table(1).SameBucket(u, v);
      const bool b2 = index.table(2).SameBucket(u, v);
      differs = (b0 != b1) || (b1 != b2);
    }
  }
  EXPECT_TRUE(differs);
}

TEST(LshIndexTest, SameBucketInAnyTableIsUnionOfTables) {
  VectorDataset dataset = GenerateCorpus(DblpLikeConfig(150, 5));
  SimHashFamily family(6);
  LshIndex index(family, dataset, 6, 3);
  for (VectorId u = 0; u < 50; ++u) {
    for (VectorId v = u + 1; v < 50; ++v) {
      bool any = false;
      for (uint32_t t = 0; t < 3; ++t) {
        any |= index.table(t).SameBucket(u, v);
      }
      EXPECT_EQ(index.SameBucketInAnyTable(u, v), any);
    }
  }
}

TEST(LshIndexTest, MemoryIsSumOfTables) {
  VectorDataset dataset = GenerateCorpus(DblpLikeConfig(120, 7));
  SimHashFamily family(8);
  LshIndex index(family, dataset, 5, 2);
  EXPECT_EQ(index.MemoryBytes(),
            index.table(0).MemoryBytes() + index.table(1).MemoryBytes());
}

TEST(LshIndexTest, AccessorsExposeFamilyAndDataset) {
  VectorDataset dataset = GenerateCorpus(DblpLikeConfig(80, 9));
  SimHashFamily family(10);
  LshIndex index(family, dataset, 4, 1);
  EXPECT_EQ(&index.family(), &family);
  // The index exposes the dataset through a view; same size, same payload.
  EXPECT_EQ(index.dataset().size(), dataset.size());
  EXPECT_TRUE(index.dataset()[0] == dataset[0]);
}

}  // namespace
}  // namespace vsj
