#include "vsj/lsh/dynamic_lsh_table.h"

#include <algorithm>
#include <map>

#include <gtest/gtest.h>

#include "test_util.h"

namespace vsj {
namespace {

/// Builds both a static and a dynamic table over the same data and checks
/// the estimator-facing invariants agree.
void ExpectMatchesStatic(const VectorDataset& dataset,
                         const LshFamily& family, uint32_t k,
                         const DynamicLshTable& dynamic) {
  const LshTable expected(family, dataset, k);
  EXPECT_EQ(dynamic.NumSameBucketPairs(), expected.NumSameBucketPairs());
  EXPECT_EQ(dynamic.num_buckets(), expected.num_buckets());
  for (VectorId u = 0; u < dataset.size(); ++u) {
    for (VectorId v = u + 1; v < dataset.size(); ++v) {
      EXPECT_EQ(dynamic.SameBucket(u, v), expected.SameBucket(u, v));
    }
  }
}

TEST(DynamicLshTableTest, InsertAllMatchesStaticBuild) {
  VectorDataset dataset = testing::SmallClusteredCorpus(200, 1);
  SimHashFamily family(2);
  DynamicLshTable dynamic(family, 8);
  for (VectorId id = 0; id < dataset.size(); ++id) {
    dynamic.Insert(id, dataset[id]);
  }
  EXPECT_EQ(dynamic.num_vectors(), dataset.size());
  ExpectMatchesStatic(dataset, family, 8, dynamic);
}

TEST(DynamicLshTableTest, RemoveUndoesInsert) {
  VectorDataset dataset = testing::SmallClusteredCorpus(150, 3);
  SimHashFamily family(4);
  DynamicLshTable dynamic(family, 8);
  for (VectorId id = 0; id < dataset.size(); ++id) {
    dynamic.Insert(id, dataset[id]);
  }
  // Remove the second half; invariants must match a static table over the
  // first half.
  VectorDataset half;
  for (VectorId id = 0; id < dataset.size(); ++id) {
    if (id < dataset.size() / 2) {
      half.Add(dataset[id]);
    } else {
      dynamic.Remove(id);
    }
  }
  EXPECT_EQ(dynamic.num_vectors(), half.size());
  const LshTable expected(family, half, 8);
  EXPECT_EQ(dynamic.NumSameBucketPairs(), expected.NumSameBucketPairs());
  for (VectorId u = 0; u < half.size(); ++u) {
    for (VectorId v = u + 1; v < half.size(); ++v) {
      EXPECT_EQ(dynamic.SameBucket(u, v), expected.SameBucket(u, v));
    }
  }
}

TEST(DynamicLshTableTest, RandomChurnKeepsInvariants) {
  VectorDataset dataset = testing::SmallClusteredCorpus(120, 5);
  SimHashFamily family(6);
  DynamicLshTable dynamic(family, 6);
  Rng rng(7);
  std::vector<bool> present(dataset.size(), false);
  for (int op = 0; op < 2000; ++op) {
    const auto id = static_cast<VectorId>(rng.Below(dataset.size()));
    if (present[id]) {
      dynamic.Remove(id);
    } else {
      dynamic.Insert(id, dataset[id]);
    }
    present[id] = !present[id];
  }
  // Rebuild the surviving subset statically and compare.
  uint64_t expected_pairs = 0;
  {
    std::map<VectorId, VectorId> dense;  // original -> compact id
    VectorDataset survivors;
    for (VectorId id = 0; id < dataset.size(); ++id) {
      if (present[id]) {
        dense[id] = survivors.Add(dataset[id]);
      }
    }
    const LshTable expected(family, survivors, 6);
    expected_pairs = expected.NumSameBucketPairs();
    for (const auto& [a, ca] : dense) {
      for (const auto& [b, cb] : dense) {
        if (a >= b) continue;
        EXPECT_EQ(dynamic.SameBucket(a, b), expected.SameBucket(ca, cb));
      }
    }
  }
  EXPECT_EQ(dynamic.NumSameBucketPairs(), expected_pairs);
}

TEST(DynamicLshTableTest, ThousandsOfChurnCyclesMatchFreshRebuild) {
  // Satellite stress: after thousands of randomized insert/remove cycles
  // the incrementally maintained quantities (N_H, Fenwick pair weights,
  // bucket counts) must equal those of a table rebuilt from scratch over
  // the survivors.
  VectorDataset dataset = testing::SmallClusteredCorpus(250, 21);
  SimHashFamily family(22);
  DynamicLshTable churned(family, 8);
  Rng rng(23);
  std::vector<bool> present(dataset.size(), false);
  for (int op = 0; op < 6000; ++op) {
    const auto id = static_cast<VectorId>(rng.Below(dataset.size()));
    if (present[id]) {
      churned.Remove(id);
    } else {
      churned.Insert(id, dataset[id]);
    }
    present[id] = !present[id];
    // The Fenwick total Σ C(b_j, 2) must track N_H exactly at every step.
    ASSERT_DOUBLE_EQ(churned.PairWeightTotal(),
                     static_cast<double>(churned.NumSameBucketPairs()));
  }

  DynamicLshTable fresh(family, 8);
  size_t survivors = 0;
  for (VectorId id = 0; id < dataset.size(); ++id) {
    if (present[id]) {
      fresh.Insert(id, dataset[id]);
      ++survivors;
    }
  }
  EXPECT_EQ(churned.num_vectors(), survivors);
  EXPECT_EQ(churned.NumSameBucketPairs(), fresh.NumSameBucketPairs());
  EXPECT_EQ(churned.NumCrossBucketPairs(), fresh.NumCrossBucketPairs());
  EXPECT_EQ(churned.num_buckets(), fresh.num_buckets());
  EXPECT_DOUBLE_EQ(churned.PairWeightTotal(), fresh.PairWeightTotal());
  for (VectorId u = 0; u < dataset.size(); ++u) {
    for (VectorId v = u + 1; v < dataset.size(); ++v) {
      ASSERT_EQ(churned.SameBucket(u, v), fresh.SameBucket(u, v))
          << u << "," << v;
    }
  }
}

TEST(DynamicLshTableTest, ArenaSurvivesRelocationsAndCompaction) {
  // The bucket arena grows buckets by relocation (doubling slack) and
  // compacts once relocation garbage exceeds the live footprint. k = 1
  // SimHash yields two giant buckets, so heavy churn forces many
  // relocations and several compactions; every estimator-facing quantity
  // must keep matching a fresh rebuild of the survivors throughout.
  VectorDataset dataset = testing::SmallClusteredCorpus(2000, 31);
  SimHashFamily family(32);
  DynamicLshTable churned(family, 1);
  Rng rng(33);
  std::vector<bool> present(dataset.size(), false);
  for (int op = 0; op < 30000; ++op) {
    const auto id = static_cast<VectorId>(rng.Below(dataset.size()));
    if (present[id]) {
      churned.Remove(id);
    } else {
      churned.Insert(id, dataset[id]);
    }
    present[id] = !present[id];
    ASSERT_DOUBLE_EQ(churned.PairWeightTotal(),
                     static_cast<double>(churned.NumSameBucketPairs()));
  }

  DynamicLshTable fresh(family, 1);
  std::vector<VectorId> live;
  for (VectorId id = 0; id < dataset.size(); ++id) {
    if (present[id]) {
      fresh.Insert(id, dataset[id]);
      live.push_back(id);
    }
  }
  EXPECT_EQ(churned.num_vectors(), live.size());
  EXPECT_EQ(churned.NumSameBucketPairs(), fresh.NumSameBucketPairs());
  EXPECT_EQ(churned.num_buckets(), fresh.num_buckets());

  // ReplayOrder must be exactly the live set, grouped by bucket: replaying
  // it into an empty table reproduces the sampling state (the snapshot
  // contract), which implies the arena's slices are intact.
  const std::vector<VectorId> order = churned.ReplayOrder();
  ASSERT_EQ(order.size(), live.size());
  std::vector<VectorId> sorted_order = order;
  std::sort(sorted_order.begin(), sorted_order.end());
  EXPECT_EQ(sorted_order, live);
  DynamicLshTable replayed(family, 1);
  for (const VectorId id : order) replayed.Insert(id, dataset[id]);
  EXPECT_EQ(replayed.NumSameBucketPairs(), churned.NumSameBucketPairs());
  Rng draw_churned(55);
  Rng draw_replayed(55);
  for (int draw = 0; draw < 2000; ++draw) {
    const VectorPair a = churned.SampleSameBucketPair(draw_churned);
    const VectorPair b = replayed.SampleSameBucketPair(draw_replayed);
    ASSERT_EQ(a.first, b.first);
    ASSERT_EQ(a.second, b.second);
    ASSERT_NE(a.first, a.second);
    ASSERT_TRUE(churned.SameBucket(a.first, a.second));
  }

  // Mass expiry: shrink the live set to a sliver of the arena's reserved
  // capacity, which must trip the trimming compaction (the live members
  // drop far below the historical bucket capacities). Then regrow through
  // the trimmed capacities. Quantities must match fresh rebuilds at both
  // extremes; ASan guards the relocations.
  std::vector<VectorId> expired;
  for (const VectorId id : live) {
    if (expired.size() + 50 < live.size()) {
      churned.Remove(id);
      expired.push_back(id);
    }
  }
  DynamicLshTable sliver(family, 1);
  for (const VectorId id : live) {
    if (churned.Contains(id)) sliver.Insert(id, dataset[id]);
  }
  EXPECT_EQ(churned.num_vectors(), 50u);
  EXPECT_EQ(churned.NumSameBucketPairs(), sliver.NumSameBucketPairs());
  for (const VectorId id : expired) churned.Insert(id, dataset[id]);
  EXPECT_EQ(churned.num_vectors(), live.size());
  EXPECT_EQ(churned.NumSameBucketPairs(), fresh.NumSameBucketPairs());
  ASSERT_DOUBLE_EQ(churned.PairWeightTotal(),
                   static_cast<double>(churned.NumSameBucketPairs()));
}

TEST(DynamicLshTableTest, SamplingIsUniformOverSameBucketPairs) {
  // Two duplicate groups: sizes 3 and 2 → same-bucket pairs 3 + 1 = 4.
  VectorDataset dataset;
  for (int i = 0; i < 3; ++i) dataset.Add(SparseVector::FromDims({1, 2, 3}));
  for (int i = 0; i < 2; ++i) {
    dataset.Add(SparseVector::FromDims({50, 60, 70}));
  }
  MinHashFamily family(8);
  DynamicLshTable dynamic(family, 16);
  for (VectorId id = 0; id < dataset.size(); ++id) {
    dynamic.Insert(id, dataset[id]);
  }
  ASSERT_EQ(dynamic.NumSameBucketPairs(), 4u);
  Rng rng(9);
  std::map<std::pair<VectorId, VectorId>, int> counts;
  const int draws = 40000;
  for (int d = 0; d < draws; ++d) {
    const VectorPair pair = dynamic.SampleSameBucketPair(rng);
    EXPECT_TRUE(dynamic.SameBucket(pair.first, pair.second));
    auto key = std::minmax(pair.first, pair.second);
    ++counts[{key.first, key.second}];
  }
  ASSERT_EQ(counts.size(), 4u);
  for (const auto& [pair, count] : counts) {
    EXPECT_NEAR(count / static_cast<double>(draws), 0.25, 0.02);
  }
}

TEST(DynamicLshTableTest, SamplingAdaptsAfterRemovals) {
  VectorDataset dataset;
  for (int i = 0; i < 3; ++i) dataset.Add(SparseVector::FromDims({1, 2, 3}));
  for (int i = 0; i < 2; ++i) {
    dataset.Add(SparseVector::FromDims({50, 60, 70}));
  }
  MinHashFamily family(10);
  DynamicLshTable dynamic(family, 16);
  for (VectorId id = 0; id < dataset.size(); ++id) {
    dynamic.Insert(id, dataset[id]);
  }
  // Remove one member of the triple: both groups become pairs.
  dynamic.Remove(0);
  EXPECT_EQ(dynamic.NumSameBucketPairs(), 2u);
  Rng rng(11);
  int group_a = 0;
  const int draws = 20000;
  for (int d = 0; d < draws; ++d) {
    const VectorPair pair = dynamic.SampleSameBucketPair(rng);
    if (pair.first == 1 || pair.first == 2) ++group_a;
  }
  EXPECT_NEAR(group_a / static_cast<double>(draws), 0.5, 0.02);
}

TEST(DynamicLshTableDeathTest, DoubleInsertAborts) {
  SimHashFamily family(12);
  DynamicLshTable dynamic(family, 4);
  dynamic.Insert(1, SparseVector::FromDims({1}));
  EXPECT_DEATH(dynamic.Insert(1, SparseVector::FromDims({2})),
               "already present");
}

TEST(DynamicLshTableDeathTest, RemoveMissingAborts) {
  SimHashFamily family(13);
  DynamicLshTable dynamic(family, 4);
  EXPECT_DEATH(dynamic.Remove(5), "not present");
}

}  // namespace
}  // namespace vsj
