// Cross-format compatibility: a corpus saved as VSJD v1, loaded, re-saved
// as VSJB v2 and loaded again must be indistinguishable to the estimator
// stack — same vectors, same fingerprint-relevant content, bit-identical
// estimates from every registered estimator (the re-save path a deployment
// takes when migrating an existing dataset directory to v2).

#include <memory>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "test_util.h"
#include "vsj/core/estimator_registry.h"
#include "vsj/io/dataset_io.h"
#include "vsj/io/vsjb_format.h"
#include "vsj/lsh/lsh_index.h"
#include "vsj/lsh/simhash.h"
#include "vsj/service/dataset_fingerprint.h"
#include "vsj/util/rng.h"

namespace vsj {
namespace {

TEST(FormatCompatTest, V1ToV2ResaveIsEstimatorBitIdentical) {
  VectorDataset original = testing::SmallClusteredCorpus(220, 13);

  // original --v1--> loaded_v1 --v2--> loaded_v2.
  std::stringstream v1_stream;
  ASSERT_TRUE(WriteDatasetV1(original, v1_stream).ok());
  VectorDataset loaded_v1;
  uint32_t version = 0;
  ASSERT_TRUE(ReadDataset(v1_stream, &loaded_v1, &version).ok());
  EXPECT_EQ(version, kVsjdVersion);

  std::stringstream v2_stream;
  ASSERT_TRUE(WriteDataset(loaded_v1, v2_stream).ok());
  VectorDataset loaded_v2;
  ASSERT_TRUE(ReadDataset(v2_stream, &loaded_v2, &version).ok());
  EXPECT_EQ(version, kVsjbVersion);

  ASSERT_EQ(loaded_v2.size(), original.size());
  for (VectorId id = 0; id < original.size(); ++id) {
    ASSERT_TRUE(loaded_v2[id] == original[id]) << "vector " << id;
    EXPECT_EQ(loaded_v2[id].norm(), original[id].norm()) << "vector " << id;
  }
  // The content fingerprint — the cache key component — survives both hops.
  EXPECT_EQ(DatasetFingerprint(original), DatasetFingerprint(loaded_v1));
  EXPECT_EQ(DatasetFingerprint(original), DatasetFingerprint(loaded_v2));

  // Every registered estimator, same seeds, across the three copies.
  constexpr uint64_t kSeed = 0xc0ffeeULL;
  constexpr uint32_t kK = 8;
  SimHashFamily family(kSeed);
  const VectorDataset* datasets[] = {&original, &loaded_v1, &loaded_v2};
  std::unique_ptr<LshIndex> indexes[3];
  for (int d = 0; d < 3; ++d) {
    indexes[d] = std::make_unique<LshIndex>(family, *datasets[d], kK, 2);
  }
  for (const std::string& name : AllEstimatorNames()) {
    for (const double tau : {0.4, 0.8}) {
      double reference = 0.0;
      for (int d = 0; d < 3; ++d) {
        EstimatorContext context;
        context.dataset = *datasets[d];
        context.index = indexes[d].get();
        context.measure = SimilarityMeasure::kCosine;
        const auto estimator = CreateEstimator(name, context);
        Rng rng(kSeed + 7);
        const double estimate = estimator->Estimate(tau, rng).estimate;
        if (d == 0) {
          reference = estimate;
        } else {
          EXPECT_EQ(estimate, reference)
              << name << " tau=" << tau << " dataset " << d;
        }
      }
    }
  }
}

}  // namespace
}  // namespace vsj
