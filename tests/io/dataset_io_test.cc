#include "vsj/io/dataset_io.h"

#include <cstdio>
#include <sstream>

#include <gtest/gtest.h>

#include "test_util.h"

namespace vsj {
namespace {

void ExpectEqualDatasets(const VectorDataset& a, const VectorDataset& b) {
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(a.name(), b.name());
  for (VectorId id = 0; id < a.size(); ++id) {
    EXPECT_EQ(a[id], b[id]) << "vector " << id;
  }
}

TEST(DatasetIoTest, RoundTripThroughStream) {
  VectorDataset original = testing::SmallClusteredCorpus(150, 1);
  std::stringstream buffer;
  ASSERT_TRUE(WriteDataset(original, buffer));
  VectorDataset loaded;
  ASSERT_TRUE(ReadDataset(buffer, &loaded));
  ExpectEqualDatasets(original, loaded);
}

TEST(DatasetIoTest, RoundTripEmptyDataset) {
  VectorDataset original("empty");
  std::stringstream buffer;
  ASSERT_TRUE(WriteDataset(original, buffer));
  VectorDataset loaded;
  ASSERT_TRUE(ReadDataset(buffer, &loaded));
  EXPECT_EQ(loaded.size(), 0u);
  EXPECT_EQ(loaded.name(), "empty");
}

TEST(DatasetIoTest, RoundTripPreservesWeights) {
  VectorDataset original("weights");
  original.Add(SparseVector({{1, 0.125f}, {1000000, 3.5f}}));
  std::stringstream buffer;
  ASSERT_TRUE(WriteDataset(original, buffer));
  VectorDataset loaded;
  ASSERT_TRUE(ReadDataset(buffer, &loaded));
  ASSERT_EQ(loaded[0].size(), 2u);
  EXPECT_FLOAT_EQ(loaded[0][0].weight, 0.125f);
  EXPECT_EQ(loaded[0][1].dim, 1000000u);
}

TEST(DatasetIoTest, RejectsBadMagic) {
  std::stringstream buffer;
  buffer << "NOTVSJDATA";
  VectorDataset loaded;
  EXPECT_FALSE(ReadDataset(buffer, &loaded));
}

TEST(DatasetIoTest, RejectsTruncatedStream) {
  VectorDataset original = testing::SmallClusteredCorpus(50, 2);
  std::stringstream buffer;
  ASSERT_TRUE(WriteDataset(original, buffer));
  const std::string full = buffer.str();
  std::stringstream truncated(full.substr(0, full.size() / 2));
  VectorDataset loaded;
  EXPECT_FALSE(ReadDataset(truncated, &loaded));
}

TEST(DatasetIoTest, RejectsEmptyStream) {
  std::stringstream buffer;
  VectorDataset loaded;
  EXPECT_FALSE(ReadDataset(buffer, &loaded));
}

TEST(DatasetIoTest, FileRoundTrip) {
  VectorDataset original = testing::SmallClusteredCorpus(80, 3);
  const std::string path = ::testing::TempDir() + "/vsj_dataset_io_test.bin";
  ASSERT_TRUE(SaveDatasetToFile(original, path));
  VectorDataset loaded;
  ASSERT_TRUE(LoadDatasetFromFile(path, &loaded));
  ExpectEqualDatasets(original, loaded);
  std::remove(path.c_str());
}

TEST(DatasetIoTest, MissingFileFailsGracefully) {
  VectorDataset loaded;
  EXPECT_FALSE(LoadDatasetFromFile("/nonexistent/path/ds.bin", &loaded));
}

}  // namespace
}  // namespace vsj
