#include "vsj/io/dataset_io.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "test_util.h"
#include "vsj/fault/fault.h"
#include "vsj/io/vsjb_format.h"

namespace vsj {
namespace {

void ExpectEqualDatasets(const VectorDataset& a, const VectorDataset& b) {
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(a.name(), b.name());
  for (VectorId id = 0; id < a.size(); ++id) {
    EXPECT_EQ(a[id], b[id]) << "vector " << id;
  }
}

TEST(DatasetIoTest, RoundTripThroughStream) {
  VectorDataset original = testing::SmallClusteredCorpus(150, 1);
  std::stringstream buffer;
  ASSERT_TRUE(WriteDataset(original, buffer).ok());
  VectorDataset loaded;
  uint32_t version = 0;
  ASSERT_TRUE(ReadDataset(buffer, &loaded, &version).ok());
  EXPECT_EQ(version, kVsjbVersion);
  ExpectEqualDatasets(original, loaded);
}

TEST(DatasetIoTest, RoundTripPreservesNormsVerbatim) {
  VectorDataset original = testing::SmallClusteredCorpus(60, 4);
  std::stringstream buffer;
  ASSERT_TRUE(WriteDataset(original, buffer).ok());
  VectorDataset loaded;
  ASSERT_TRUE(ReadDataset(buffer, &loaded).ok());
  for (VectorId id = 0; id < original.size(); ++id) {
    // Bit-identical, not approximately equal: v2 stores the cached norms
    // and the loader adopts them without recomputation.
    EXPECT_EQ(original[id].norm(), loaded[id].norm()) << "vector " << id;
    EXPECT_EQ(original[id].l1_norm(), loaded[id].l1_norm())
        << "vector " << id;
  }
}

TEST(DatasetIoTest, RoundTripEmptyDataset) {
  VectorDataset original("empty");
  std::stringstream buffer;
  ASSERT_TRUE(WriteDataset(original, buffer).ok());
  VectorDataset loaded;
  ASSERT_TRUE(ReadDataset(buffer, &loaded).ok());
  EXPECT_EQ(loaded.size(), 0u);
  EXPECT_EQ(loaded.name(), "empty");
}

TEST(DatasetIoTest, RoundTripDatasetWithEmptyVectors) {
  VectorDataset original("zeros");
  original.Add(SparseVector());
  original.Add(SparseVector({{3, 1.5f}}));
  original.Add(SparseVector());
  std::stringstream buffer;
  ASSERT_TRUE(WriteDataset(original, buffer).ok());
  VectorDataset loaded;
  ASSERT_TRUE(ReadDataset(buffer, &loaded).ok());
  ExpectEqualDatasets(original, loaded);
  EXPECT_EQ(loaded[0].size(), 0u);
  EXPECT_EQ(loaded[2].size(), 0u);
}

TEST(DatasetIoTest, RoundTripPreservesWeights) {
  VectorDataset original("weights");
  original.Add(SparseVector({{1, 0.125f}, {1000000, 3.5f}}));
  std::stringstream buffer;
  ASSERT_TRUE(WriteDataset(original, buffer).ok());
  VectorDataset loaded;
  ASSERT_TRUE(ReadDataset(buffer, &loaded).ok());
  ASSERT_EQ(loaded[0].size(), 2u);
  EXPECT_FLOAT_EQ(loaded[0][0].weight, 0.125f);
  EXPECT_EQ(loaded[0][1].dim, 1000000u);
}

TEST(DatasetIoTest, V1RoundTripStillReadable) {
  VectorDataset original = testing::SmallClusteredCorpus(80, 2);
  std::stringstream buffer;
  ASSERT_TRUE(WriteDatasetV1(original, buffer).ok());
  VectorDataset loaded;
  uint32_t version = 0;
  ASSERT_TRUE(ReadDataset(buffer, &loaded, &version).ok());
  EXPECT_EQ(version, kVsjdVersion);
  ExpectEqualDatasets(original, loaded);
}

TEST(DatasetIoTest, RejectsBadMagic) {
  std::stringstream buffer;
  buffer << "NOTVSJDATA";
  VectorDataset loaded;
  const IoStatus status = ReadDataset(buffer, &loaded);
  EXPECT_EQ(status.code, IoError::kBadMagic);
  EXPECT_EQ(status.byte_offset, 0u);
}

TEST(DatasetIoTest, RejectsFutureVersion) {
  // A v2 file whose version field claims 99: structurally plausible,
  // semantically from the future.
  VectorDataset original = testing::SmallClusteredCorpus(10, 5);
  std::stringstream buffer;
  ASSERT_TRUE(WriteDataset(original, buffer).ok());
  std::string bytes = buffer.str();
  const uint32_t future = 99;
  std::memcpy(bytes.data() + 4, &future, sizeof(future));
  std::stringstream tampered(bytes);
  VectorDataset loaded;
  const IoStatus status = ReadDataset(tampered, &loaded);
  EXPECT_EQ(status.code, IoError::kUnsupportedVersion);
  EXPECT_NE(status.reason.find("99"), std::string::npos) << status.ToString();
}

TEST(DatasetIoTest, RejectsFutureV1Version) {
  VectorDataset original = testing::SmallClusteredCorpus(10, 5);
  std::stringstream buffer;
  ASSERT_TRUE(WriteDatasetV1(original, buffer).ok());
  std::string bytes = buffer.str();
  const uint32_t future = 7;
  std::memcpy(bytes.data() + 4, &future, sizeof(future));
  std::stringstream tampered(bytes);
  VectorDataset loaded;
  EXPECT_EQ(ReadDataset(tampered, &loaded).code,
            IoError::kUnsupportedVersion);
}

TEST(DatasetIoTest, RejectsTruncatedStream) {
  for (const bool v1 : {false, true}) {
    VectorDataset original = testing::SmallClusteredCorpus(50, 2);
    std::stringstream buffer;
    ASSERT_TRUE((v1 ? WriteDatasetV1(original, buffer)
                    : WriteDataset(original, buffer))
                    .ok());
    const std::string full = buffer.str();
    std::stringstream truncated(full.substr(0, full.size() / 2));
    VectorDataset loaded;
    const IoStatus status = ReadDataset(truncated, &loaded);
    EXPECT_EQ(status.code, IoError::kCorrupt) << "v1=" << v1;
    EXPECT_FALSE(status.reason.empty());
  }
}

TEST(DatasetIoTest, DetectsChecksumMismatch) {
  VectorDataset original = testing::SmallClusteredCorpus(50, 3);
  std::stringstream buffer;
  ASSERT_TRUE(WriteDataset(original, buffer).ok());
  std::string bytes = buffer.str();
  // Flip one bit in the last section's payload (the file tail).
  bytes[bytes.size() - 5] ^= 0x40;
  std::stringstream tampered(bytes);
  VectorDataset loaded;
  const IoStatus status = ReadDataset(tampered, &loaded);
  EXPECT_EQ(status.code, IoError::kChecksumMismatch);
  EXPECT_GT(status.byte_offset, 0u);
}

TEST(DatasetIoTest, RejectsEmptyStream) {
  std::stringstream buffer;
  VectorDataset loaded;
  EXPECT_EQ(ReadDataset(buffer, &loaded).code, IoError::kCorrupt);
}

TEST(DatasetIoTest, FileRoundTrip) {
  VectorDataset original = testing::SmallClusteredCorpus(80, 3);
  const std::string path = ::testing::TempDir() + "/vsj_dataset_io_test.bin";
  ASSERT_TRUE(SaveDatasetToFile(original, path).ok());
  VectorDataset loaded;
  ASSERT_TRUE(LoadDatasetFromFile(path, &loaded).ok());
  ExpectEqualDatasets(original, loaded);
  std::remove(path.c_str());
}

TEST(DatasetIoTest, MissingFileIsNotFoundWithPath) {
  VectorDataset loaded;
  const IoStatus status =
      LoadDatasetFromFile("/nonexistent/path/ds.bin", &loaded);
  EXPECT_EQ(status.code, IoError::kNotFound);
  EXPECT_EQ(status.path, "/nonexistent/path/ds.bin");
  // Distinguishable from corruption: a corrupt file reports a different
  // class and carries the failure offset.
  EXPECT_NE(status.code, IoError::kCorrupt);
}

TEST(DatasetIoTest, CorruptFileReportsPathAndOffset) {
  VectorDataset original = testing::SmallClusteredCorpus(30, 9);
  const std::string path = ::testing::TempDir() + "/vsj_corrupt_test.bin";
  ASSERT_TRUE(SaveDatasetToFile(original, path).ok());
  {
    std::fstream f(path,
                   std::ios::binary | std::ios::in | std::ios::out);
    f.seekg(-3, std::ios::end);
    const char original_byte = static_cast<char>(f.get());
    f.seekp(-3, std::ios::end);
    f.put(static_cast<char>(original_byte ^ 0x20));
  }
  VectorDataset loaded;
  const IoStatus status = LoadDatasetFromFile(path, &loaded);
  EXPECT_EQ(status.code, IoError::kChecksumMismatch);
  EXPECT_EQ(status.path, path);
  EXPECT_NE(status.ToString().find(path), std::string::npos);
  std::remove(path.c_str());
}

TEST(DatasetIoTest, SaveLeavesNoTmpFileBehind) {
  // SaveDatasetToFile goes through AtomicFileWriter: on success the
  // <path>.tmp staging file must have been renamed away.
  VectorDataset original = testing::SmallClusteredCorpus(40, 2);
  const std::string path = ::testing::TempDir() + "/vsj_no_tmp_test.bin";
  ASSERT_TRUE(SaveDatasetToFile(original, path).ok());
  std::ifstream tmp(path + ".tmp");
  EXPECT_FALSE(static_cast<bool>(tmp));
  std::remove(path.c_str());
}

#if VSJ_FAULT_COMPILED

TEST(DatasetIoTest, FailedSaveKeepsTheOldFileReadable) {
  VectorDataset original = testing::SmallClusteredCorpus(40, 5);
  const std::string path = ::testing::TempDir() + "/vsj_save_fault_test.bin";
  ASSERT_TRUE(SaveDatasetToFile(original, path).ok());

  // Every step of a replacement save can die; the original must survive
  // each of them byte-readable, with no staging litter.
  for (const char* point : {"io.atomic.open", "io.vsjb.write_section",
                            "io.atomic.fsync", "io.atomic.rename"}) {
    fault::FaultSpec spec;
    spec.point = point;
    fault::Arm(spec);
    const IoStatus status =
        SaveDatasetToFile(testing::SmallClusteredCorpus(10, 6), path);
    fault::ClearAll();
    ASSERT_FALSE(status.ok()) << point;
    VectorDataset loaded;
    ASSERT_TRUE(LoadDatasetFromFile(path, &loaded).ok()) << point;
    ExpectEqualDatasets(original, loaded);
    std::ifstream tmp(path + ".tmp");
    EXPECT_FALSE(static_cast<bool>(tmp)) << point;
  }
  std::remove(path.c_str());
}

#endif  // VSJ_FAULT_COMPILED

}  // namespace
}  // namespace vsj
