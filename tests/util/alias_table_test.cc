#include "vsj/util/alias_table.h"

#include <vector>

#include <gtest/gtest.h>

namespace vsj {
namespace {

TEST(AliasTableTest, SingleOutcome) {
  AliasTable table({5.0});
  Rng rng(1);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(table.Sample(rng), 0u);
}

TEST(AliasTableTest, NormalizedProbabilities) {
  AliasTable table({1.0, 3.0});
  EXPECT_DOUBLE_EQ(table.Probability(0), 0.25);
  EXPECT_DOUBLE_EQ(table.Probability(1), 0.75);
}

TEST(AliasTableTest, ZeroWeightNeverSampled) {
  AliasTable table({0.0, 1.0, 0.0, 2.0});
  Rng rng(2);
  for (int i = 0; i < 5000; ++i) {
    const size_t s = table.Sample(rng);
    EXPECT_TRUE(s == 1 || s == 3);
  }
}

TEST(AliasTableTest, EmpiricalFrequenciesMatchWeights) {
  const std::vector<double> weights = {1.0, 2.0, 3.0, 4.0, 10.0};
  AliasTable table(weights);
  Rng rng(3);
  const int n = 200000;
  std::vector<int> counts(weights.size(), 0);
  for (int i = 0; i < n; ++i) ++counts[table.Sample(rng)];
  double total = 0.0;
  for (double w : weights) total += w;
  for (size_t i = 0; i < weights.size(); ++i) {
    const double expected = weights[i] / total;
    EXPECT_NEAR(static_cast<double>(counts[i]) / n, expected,
                0.01)
        << "outcome " << i;
  }
}

TEST(AliasTableTest, HighlySkewedWeights) {
  AliasTable table({1e-9, 1.0});
  Rng rng(4);
  int zero_count = 0;
  for (int i = 0; i < 100000; ++i) zero_count += table.Sample(rng) == 0;
  EXPECT_LE(zero_count, 2);  // P ≈ 1e-9 per draw
}

TEST(AliasTableTest, ManyOutcomesUniform) {
  const size_t n = 1000;
  AliasTable table(std::vector<double>(n, 1.0));
  Rng rng(5);
  std::vector<int> counts(n, 0);
  const int draws = 200000;
  for (int i = 0; i < draws; ++i) ++counts[table.Sample(rng)];
  for (size_t i = 0; i < n; ++i) {
    EXPECT_GT(counts[i], 0) << "outcome " << i << " never sampled";
  }
}

TEST(AliasTableDeathTest, RejectsEmptyWeights) {
  EXPECT_DEATH(AliasTable(std::vector<double>{}), "CHECK");
}

TEST(AliasTableDeathTest, RejectsNegativeWeight) {
  EXPECT_DEATH(AliasTable({1.0, -0.5}), "non-negative");
}

TEST(AliasTableDeathTest, RejectsAllZeroWeights) {
  EXPECT_DEATH(AliasTable({0.0, 0.0}), "positive");
}

}  // namespace
}  // namespace vsj
