#include "vsj/util/thread_pool.h"

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace vsj {
namespace {

TEST(ThreadPoolTest, InlinePoolHasNoWorkers) {
  ThreadPool pool0(0);
  EXPECT_EQ(pool0.num_threads(), 0u);
  ThreadPool pool1(1);
  EXPECT_EQ(pool1.num_threads(), 0u);
  EXPECT_EQ(pool1.concurrency(), 1u);
}

TEST(ThreadPoolTest, SpawnsRequestedConcurrency) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 3u);  // caller participates as the 4th
  EXPECT_EQ(pool.concurrency(), 4u);
}

TEST(ThreadPoolTest, SubmitRunsTask) {
  ThreadPool pool(2);
  std::atomic<int> value{0};
  pool.Submit([&] { value.store(42); });
  for (int spin = 0; spin < 1000000 && value.load() == 0; ++spin) {
    std::this_thread::yield();
  }
  EXPECT_EQ(value.load(), 42);
}

TEST(ThreadPoolTest, SubmitInlineRunsImmediately) {
  ThreadPool pool(1);
  int value = 0;
  pool.Submit([&] { value = 7; });
  EXPECT_EQ(value, 7);
}

TEST(ThreadPoolTest, ParallelForVisitsEveryIndexOnce) {
  for (size_t threads : {1u, 2u, 4u, 8u}) {
    ThreadPool pool(threads);
    constexpr size_t kN = 10000;
    std::vector<std::atomic<int>> visits(kN);
    pool.ParallelFor(kN, [&](size_t i) {
      visits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (size_t i = 0; i < kN; ++i) {
      ASSERT_EQ(visits[i].load(), 1) << "threads=" << threads << " i=" << i;
    }
  }
}

TEST(ThreadPoolTest, ParallelForHandlesSmallAndEmptyRanges) {
  ThreadPool pool(4);
  std::atomic<size_t> count{0};
  pool.ParallelFor(0, [&](size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 0u);
  pool.ParallelFor(1, [&](size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 1u);
  count.store(0);
  pool.ParallelFor(3, [&](size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 3u);
}

TEST(ThreadPoolTest, ParallelForAccumulatesCorrectSum) {
  ThreadPool pool(4);
  constexpr size_t kN = 5000;
  std::vector<uint64_t> out(kN, 0);
  pool.ParallelFor(kN, [&](size_t i) { out[i] = i; });
  const uint64_t sum = std::accumulate(out.begin(), out.end(), uint64_t{0});
  EXPECT_EQ(sum, uint64_t{kN} * (kN - 1) / 2);
}

TEST(ThreadPoolTest, NestedParallelForDoesNotDeadlock) {
  ThreadPool pool(2);
  std::atomic<size_t> count{0};
  pool.ParallelFor(4, [&](size_t) {
    pool.ParallelFor(4, [&](size_t) {
      count.fetch_add(1, std::memory_order_relaxed);
    });
  });
  EXPECT_EQ(count.load(), 16u);
}

TEST(ThreadPoolTest, ThrowingBodyPropagatesToCaller) {
  for (size_t threads : {1u, 2u, 4u}) {
    ThreadPool pool(threads);
    EXPECT_THROW(
        pool.ParallelFor(100,
                         [&](size_t i) {
                           if (i == 37) throw std::runtime_error("boom");
                         }),
        std::runtime_error)
        << "threads=" << threads;
  }
}

TEST(ThreadPoolTest, ThrowDoesNotPoisonThePool) {
  ThreadPool pool(4);
  for (int round = 0; round < 10; ++round) {
    EXPECT_THROW(pool.ParallelFor(
                     64, [](size_t) { throw std::runtime_error("boom"); }),
                 std::runtime_error);
    // The same pool keeps working after the failed call.
    std::atomic<size_t> count{0};
    pool.ParallelFor(64, [&](size_t) {
      count.fetch_add(1, std::memory_order_relaxed);
    });
    ASSERT_EQ(count.load(), 64u);
  }
}

TEST(ThreadPoolTest, ThrowingSingleItemRangeRunsInline) {
  ThreadPool pool(4);
  // n == 1 executes on the calling thread; the exception must still reach
  // the caller (and zero-item ranges must not invoke the body at all).
  EXPECT_THROW(
      pool.ParallelFor(1, [](size_t) { throw std::runtime_error("boom"); }),
      std::runtime_error);
  pool.ParallelFor(0, [](size_t) { throw std::runtime_error("never"); });
}

TEST(ThreadPoolTest, NestedParallelForFromWorkerTask) {
  // A worker-executed Submit task issuing its own ParallelFor must complete
  // (chunks are claimed cooperatively, so the worker can finish the nested
  // call itself even with every other worker busy).
  ThreadPool pool(2);
  std::atomic<size_t> count{0};
  std::atomic<bool> done{false};
  pool.Submit([&] {
    pool.ParallelFor(32, [&](size_t) {
      count.fetch_add(1, std::memory_order_relaxed);
    });
    done.store(true);
  });
  for (int spin = 0; spin < 10000000 && !done.load(); ++spin) {
    std::this_thread::yield();
  }
  ASSERT_TRUE(done.load());
  EXPECT_EQ(count.load(), 32u);
}

TEST(ThreadPoolTest, ConcurrentParallelForCallersStress) {
  // Several external threads hammer one pool concurrently; every call must
  // see exactly its own n iterations.
  ThreadPool pool(4);
  constexpr size_t kCallers = 4;
  constexpr size_t kRounds = 25;
  std::vector<std::thread> callers;
  std::atomic<bool> failed{false};
  for (size_t c = 0; c < kCallers; ++c) {
    callers.emplace_back([&, c] {
      for (size_t round = 0; round < kRounds; ++round) {
        const size_t n = 50 + 37 * c + round;
        std::atomic<size_t> count{0};
        pool.ParallelFor(n, [&](size_t) {
          count.fetch_add(1, std::memory_order_relaxed);
        });
        if (count.load() != n) failed.store(true);
      }
    });
  }
  for (std::thread& caller : callers) caller.join();
  EXPECT_FALSE(failed.load());
}

TEST(ThreadPoolTest, ExceptionInNestedParallelForPropagates) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.ParallelFor(4,
                                [&](size_t) {
                                  pool.ParallelFor(4, [](size_t j) {
                                    if (j == 3) {
                                      throw std::runtime_error("inner");
                                    }
                                  });
                                }),
               std::runtime_error);
}

TEST(ThreadPoolTest, ReusableAcrossManyCalls) {
  ThreadPool pool(4);
  for (int round = 0; round < 50; ++round) {
    std::atomic<size_t> count{0};
    pool.ParallelFor(97, [&](size_t) {
      count.fetch_add(1, std::memory_order_relaxed);
    });
    ASSERT_EQ(count.load(), 97u);
  }
}

}  // namespace
}  // namespace vsj
