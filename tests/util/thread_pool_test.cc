#include "vsj/util/thread_pool.h"

#include <atomic>
#include <numeric>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace vsj {
namespace {

TEST(ThreadPoolTest, InlinePoolHasNoWorkers) {
  ThreadPool pool0(0);
  EXPECT_EQ(pool0.num_threads(), 0u);
  ThreadPool pool1(1);
  EXPECT_EQ(pool1.num_threads(), 0u);
  EXPECT_EQ(pool1.concurrency(), 1u);
}

TEST(ThreadPoolTest, SpawnsRequestedConcurrency) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 3u);  // caller participates as the 4th
  EXPECT_EQ(pool.concurrency(), 4u);
}

TEST(ThreadPoolTest, SubmitRunsTask) {
  ThreadPool pool(2);
  std::atomic<int> value{0};
  pool.Submit([&] { value.store(42); });
  for (int spin = 0; spin < 1000000 && value.load() == 0; ++spin) {
    std::this_thread::yield();
  }
  EXPECT_EQ(value.load(), 42);
}

TEST(ThreadPoolTest, SubmitInlineRunsImmediately) {
  ThreadPool pool(1);
  int value = 0;
  pool.Submit([&] { value = 7; });
  EXPECT_EQ(value, 7);
}

TEST(ThreadPoolTest, ParallelForVisitsEveryIndexOnce) {
  for (size_t threads : {1u, 2u, 4u, 8u}) {
    ThreadPool pool(threads);
    constexpr size_t kN = 10000;
    std::vector<std::atomic<int>> visits(kN);
    pool.ParallelFor(kN, [&](size_t i) {
      visits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (size_t i = 0; i < kN; ++i) {
      ASSERT_EQ(visits[i].load(), 1) << "threads=" << threads << " i=" << i;
    }
  }
}

TEST(ThreadPoolTest, ParallelForHandlesSmallAndEmptyRanges) {
  ThreadPool pool(4);
  std::atomic<size_t> count{0};
  pool.ParallelFor(0, [&](size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 0u);
  pool.ParallelFor(1, [&](size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 1u);
  count.store(0);
  pool.ParallelFor(3, [&](size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 3u);
}

TEST(ThreadPoolTest, ParallelForAccumulatesCorrectSum) {
  ThreadPool pool(4);
  constexpr size_t kN = 5000;
  std::vector<uint64_t> out(kN, 0);
  pool.ParallelFor(kN, [&](size_t i) { out[i] = i; });
  const uint64_t sum = std::accumulate(out.begin(), out.end(), uint64_t{0});
  EXPECT_EQ(sum, uint64_t{kN} * (kN - 1) / 2);
}

TEST(ThreadPoolTest, NestedParallelForDoesNotDeadlock) {
  ThreadPool pool(2);
  std::atomic<size_t> count{0};
  pool.ParallelFor(4, [&](size_t) {
    pool.ParallelFor(4, [&](size_t) {
      count.fetch_add(1, std::memory_order_relaxed);
    });
  });
  EXPECT_EQ(count.load(), 16u);
}

TEST(ThreadPoolTest, ReusableAcrossManyCalls) {
  ThreadPool pool(4);
  for (int round = 0; round < 50; ++round) {
    std::atomic<size_t> count{0};
    pool.ParallelFor(97, [&](size_t) {
      count.fetch_add(1, std::memory_order_relaxed);
    });
    ASSERT_EQ(count.load(), 97u);
  }
}

}  // namespace
}  // namespace vsj
