#include "vsj/util/env.h"

#include <cstdlib>

#include <gtest/gtest.h>

namespace vsj {
namespace {

TEST(EnvTest, FallbackWhenUnset) {
  ::unsetenv("VSJ_TEST_UNSET");
  EXPECT_EQ(EnvInt64("VSJ_TEST_UNSET", 42), 42);
  EXPECT_DOUBLE_EQ(EnvDouble("VSJ_TEST_UNSET", 1.5), 1.5);
}

TEST(EnvTest, ParsesInteger) {
  ::setenv("VSJ_TEST_INT", "12345", 1);
  EXPECT_EQ(EnvInt64("VSJ_TEST_INT", 0), 12345);
  ::setenv("VSJ_TEST_INT", "-7", 1);
  EXPECT_EQ(EnvInt64("VSJ_TEST_INT", 0), -7);
  ::unsetenv("VSJ_TEST_INT");
}

TEST(EnvTest, ParsesDouble) {
  ::setenv("VSJ_TEST_DBL", "0.25", 1);
  EXPECT_DOUBLE_EQ(EnvDouble("VSJ_TEST_DBL", 0.0), 0.25);
  ::unsetenv("VSJ_TEST_DBL");
}

TEST(EnvTest, FallbackOnGarbage) {
  ::setenv("VSJ_TEST_BAD", "12abc", 1);
  EXPECT_EQ(EnvInt64("VSJ_TEST_BAD", 9), 9);
  EXPECT_DOUBLE_EQ(EnvDouble("VSJ_TEST_BAD", 2.5), 2.5);
  ::setenv("VSJ_TEST_BAD", "", 1);
  EXPECT_EQ(EnvInt64("VSJ_TEST_BAD", 9), 9);
  ::unsetenv("VSJ_TEST_BAD");
}

}  // namespace
}  // namespace vsj
