#include "vsj/util/rng.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

namespace vsj {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += a.Next() == b.Next() ? 1 : 0;
  EXPECT_LT(equal, 4);
}

TEST(RngTest, BelowStaysInRange) {
  Rng rng(7);
  for (uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.Below(bound), bound);
  }
}

TEST(RngTest, BelowOneAlwaysZero) {
  Rng rng(3);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.Below(1), 0u);
}

TEST(RngTest, UniformInclusiveBounds) {
  Rng rng(11);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const int64_t v = rng.Uniform(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, NextDoubleMeanNearHalf) {
  Rng rng(9);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.NextDouble();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, BelowIsApproximatelyUniform) {
  Rng rng(13);
  constexpr uint64_t kBuckets = 10;
  constexpr int kDraws = 100000;
  std::vector<int> counts(kBuckets, 0);
  for (int i = 0; i < kDraws; ++i) ++counts[rng.Below(kBuckets)];
  // Chi-squared with 9 dof; 99.9% critical value ≈ 27.9.
  const double expected = static_cast<double>(kDraws) / kBuckets;
  double chi2 = 0.0;
  for (int c : counts) {
    const double d = c - expected;
    chi2 += d * d / expected;
  }
  EXPECT_LT(chi2, 27.9);
}

TEST(RngTest, GaussianMomentsMatchStandardNormal) {
  Rng rng(17);
  const int n = 200000;
  double sum = 0.0;
  double sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double g = rng.NextGaussian();
    sum += g;
    sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.01);
  EXPECT_NEAR(sq / n, 1.0, 0.02);
}

TEST(RngTest, NextBoolMatchesProbability) {
  Rng rng(23);
  const int n = 100000;
  int hits = 0;
  for (int i = 0; i < n; ++i) hits += rng.NextBool(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, SplitProducesIndependentStream) {
  Rng a(31);
  Rng b = a.Split();
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += a.Next() == b.Next() ? 1 : 0;
  EXPECT_LT(equal, 4);
}

TEST(RngTest, ForkIsDeterministicAndPure) {
  const Rng parent(123);
  Rng a = parent.Fork(7);
  Rng b = parent.Fork(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, ForkDoesNotAdvanceParent) {
  Rng forked(123);
  (void)forked.Fork(0);
  (void)forked.Fork(1);
  Rng untouched(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(forked.Next(), untouched.Next());
}

TEST(RngTest, ForkStreamsAreIndependent) {
  const Rng parent(31);
  // Nearby stream ids must land on unrelated sequences.
  Rng a = parent.Fork(0);
  Rng b = parent.Fork(1);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += a.Next() == b.Next() ? 1 : 0;
  EXPECT_LT(equal, 4);
}

TEST(RngTest, ForkOrderIndependent) {
  const Rng parent(55);
  // Stream i is the same generator no matter how many forks happened
  // before — the property batch estimation relies on.
  Rng late = parent.Fork(5);
  const Rng parent2(55);
  for (uint64_t s = 0; s < 5; ++s) (void)parent2.Fork(s);
  Rng early = parent2.Fork(5);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(late.Next(), early.Next());
}

TEST(RngTest, ForkDependsOnParentSeed) {
  Rng a = Rng(1).Fork(3);
  Rng b = Rng(2).Fork(3);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += a.Next() == b.Next() ? 1 : 0;
  EXPECT_LT(equal, 4);
}

TEST(RngTest, ForkedStreamIsUniform) {
  Rng rng = Rng(99).Fork(17);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.NextDouble();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, SplitMix64KnownSequenceAdvancesState) {
  uint64_t state = 0;
  const uint64_t first = SplitMix64(state);
  const uint64_t second = SplitMix64(state);
  EXPECT_NE(first, second);
  uint64_t state2 = 0;
  EXPECT_EQ(SplitMix64(state2), first);
}

}  // namespace
}  // namespace vsj
