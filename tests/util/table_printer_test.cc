#include "vsj/util/table_printer.h"

#include <sstream>

#include <gtest/gtest.h>

namespace vsj {
namespace {

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter table("My Table");
  table.SetHeader({"tau", "value"});
  table.AddRow({"0.1", "123456"});
  table.AddRow({"0.95", "7"});
  std::ostringstream os;
  table.Print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("My Table"), std::string::npos);
  EXPECT_NE(out.find("tau"), std::string::npos);
  // Every data line has the same width of column one (padded).
  EXPECT_NE(out.find("0.1 "), std::string::npos);
  EXPECT_NE(out.find("0.95"), std::string::npos);
}

TEST(TablePrinterTest, RaggedRowsArePadded) {
  TablePrinter table;
  table.SetHeader({"a", "b", "c"});
  table.AddRow({"1"});
  std::ostringstream os;
  table.Print(os);
  EXPECT_NE(os.str().find("1"), std::string::npos);
}

TEST(TablePrinterTest, CsvEscapesCommasAndQuotes) {
  TablePrinter table;
  table.SetHeader({"name", "note"});
  table.AddRow({"a,b", "say \"hi\""});
  std::ostringstream os;
  table.PrintCsv(os);
  EXPECT_EQ(os.str(), "name,note\n\"a,b\",\"say \"\"hi\"\"\"\n");
}

TEST(TablePrinterTest, FmtPrecision) {
  EXPECT_EQ(TablePrinter::Fmt(3.14159, 2), "3.14");
  EXPECT_EQ(TablePrinter::Fmt(-0.5, 1), "-0.5");
}

TEST(TablePrinterTest, SciNotation) {
  EXPECT_EQ(TablePrinter::Sci(9.1e-08, 1), "9.1e-08");
}

TEST(TablePrinterTest, CountHumanReadable) {
  EXPECT_EQ(TablePrinter::Count(105e9), "105B");
  EXPECT_EQ(TablePrinter::Count(267e6), "267M");
  EXPECT_EQ(TablePrinter::Count(11.2e6), "11.2M");
  EXPECT_EQ(TablePrinter::Count(103e3), "103K");
  EXPECT_EQ(TablePrinter::Count(42000), "42.0K");
  EXPECT_EQ(TablePrinter::Count(42), "42");
}

TEST(TablePrinterTest, PctFormatsFraction) {
  EXPECT_EQ(TablePrinter::Pct(-0.952), "-95.2%");
  EXPECT_EQ(TablePrinter::Pct(0.3, 0), "30%");
}

TEST(TablePrinterTest, NumRows) {
  TablePrinter table;
  EXPECT_EQ(table.num_rows(), 0u);
  table.AddRow({"x"});
  table.AddRow({"y"});
  EXPECT_EQ(table.num_rows(), 2u);
}

}  // namespace
}  // namespace vsj
