#include "vsj/util/fenwick_tree.h"

#include <vector>

#include <gtest/gtest.h>

namespace vsj {
namespace {

TEST(FenwickTreeTest, PrefixSumsMatchNaive) {
  FenwickTree tree(10);
  std::vector<double> values(10, 0.0);
  Rng rng(1);
  for (int round = 0; round < 200; ++round) {
    const size_t i = rng.Below(10);
    const double w = rng.NextDouble() * 5.0;
    tree.Set(i, w);
    values[i] = w;
    double naive = 0.0;
    for (size_t j = 0; j < 10; ++j) {
      EXPECT_NEAR(tree.PrefixSum(j), naive, 1e-9);
      naive += values[j];
    }
    EXPECT_NEAR(tree.Total(), naive, 1e-9);
  }
}

TEST(FenwickTreeTest, AppendGrowsTree) {
  FenwickTree tree;
  EXPECT_EQ(tree.size(), 0u);
  for (size_t i = 0; i < 20; ++i) {
    EXPECT_EQ(tree.Append(), i);
    tree.Set(i, static_cast<double>(i + 1));
  }
  EXPECT_EQ(tree.size(), 20u);
  EXPECT_NEAR(tree.Total(), 210.0, 1e-9);  // 1 + 2 + ... + 20
  EXPECT_NEAR(tree.PrefixSum(10), 55.0, 1e-9);
}

TEST(FenwickTreeTest, AppendAfterUpdatesKeepsSums) {
  FenwickTree tree(3);
  tree.Set(0, 1.0);
  tree.Set(1, 2.0);
  tree.Set(2, 3.0);
  const size_t i = tree.Append();
  EXPECT_EQ(i, 3u);
  EXPECT_NEAR(tree.Total(), 6.0, 1e-9);
  tree.Set(3, 4.0);
  EXPECT_NEAR(tree.Total(), 10.0, 1e-9);
  EXPECT_NEAR(tree.PrefixSum(3), 6.0, 1e-9);
}

TEST(FenwickTreeTest, SampleMatchesWeights) {
  FenwickTree tree(4);
  const std::vector<double> weights = {1.0, 0.0, 3.0, 6.0};
  for (size_t i = 0; i < weights.size(); ++i) tree.Set(i, weights[i]);
  Rng rng(2);
  std::vector<int> counts(4, 0);
  const int draws = 100000;
  for (int d = 0; d < draws; ++d) ++counts[tree.Sample(rng)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(counts[0] / static_cast<double>(draws), 0.1, 0.01);
  EXPECT_NEAR(counts[2] / static_cast<double>(draws), 0.3, 0.01);
  EXPECT_NEAR(counts[3] / static_cast<double>(draws), 0.6, 0.01);
}

TEST(FenwickTreeTest, SampleAfterWeightChanges) {
  FenwickTree tree(3);
  tree.Set(0, 5.0);
  tree.Set(1, 5.0);
  tree.Set(2, 5.0);
  tree.Set(0, 0.0);  // zero out slot 0
  Rng rng(3);
  for (int d = 0; d < 2000; ++d) EXPECT_NE(tree.Sample(rng), 0u);
}

TEST(FenwickTreeTest, SingleSlot) {
  FenwickTree tree(1);
  tree.Set(0, 0.5);
  Rng rng(4);
  for (int d = 0; d < 50; ++d) EXPECT_EQ(tree.Sample(rng), 0u);
}

TEST(FenwickTreeDeathTest, SampleFromEmptyAborts) {
  FenwickTree tree(3);
  Rng rng(5);
  EXPECT_DEATH(tree.Sample(rng), "all-zero");
}

}  // namespace
}  // namespace vsj
