#include "vsj/util/hash.h"

#include <cmath>
#include <set>

#include <gtest/gtest.h>

namespace vsj {
namespace {

TEST(HashTest, Mix64IsDeterministic) {
  EXPECT_EQ(Mix64(12345), Mix64(12345));
}

TEST(HashTest, Mix64IsBijectiveOnSample) {
  // A bijection cannot collide; check a decent sample.
  std::set<uint64_t> outputs;
  for (uint64_t x = 0; x < 10000; ++x) outputs.insert(Mix64(x));
  EXPECT_EQ(outputs.size(), 10000u);
}

TEST(HashTest, Mix64Avalanche) {
  // Flipping one input bit should flip ~half the output bits.
  int total_flips = 0;
  const int trials = 64;
  for (int bit = 0; bit < trials; ++bit) {
    const uint64_t a = Mix64(0x123456789abcdefULL);
    const uint64_t b = Mix64(0x123456789abcdefULL ^ (1ULL << bit));
    total_flips += __builtin_popcountll(a ^ b);
  }
  const double avg = static_cast<double>(total_flips) / trials;
  EXPECT_GT(avg, 24.0);
  EXPECT_LT(avg, 40.0);
}

TEST(HashTest, HashCombineOrderMatters) {
  EXPECT_NE(HashCombine(1, 2), HashCombine(2, 1));
}

TEST(HashTest, HashCombineNoObviousCollisions) {
  std::set<uint64_t> outputs;
  for (uint64_t a = 0; a < 100; ++a) {
    for (uint64_t b = 0; b < 100; ++b) outputs.insert(HashCombine(a, b));
  }
  EXPECT_EQ(outputs.size(), 10000u);
}

TEST(HashTest, UniformFromHashRangeAndMean) {
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double u = UniformFromHash(i, 99);
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(HashTest, GaussianFromHashMoments) {
  double sum = 0.0;
  double sq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double g = GaussianFromHash(i, 7);
    sum += g;
    sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.01);
  EXPECT_NEAR(sq / n, 1.0, 0.02);
}

TEST(HashTest, GaussianFromHashDeterministic) {
  EXPECT_DOUBLE_EQ(GaussianFromHash(42, 7), GaussianFromHash(42, 7));
  EXPECT_NE(GaussianFromHash(42, 7), GaussianFromHash(42, 8));
  EXPECT_NE(GaussianFromHash(42, 7), GaussianFromHash(43, 7));
}

}  // namespace
}  // namespace vsj
