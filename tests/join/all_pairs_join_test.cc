#include "vsj/join/all_pairs_join.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "vsj/gen/workloads.h"
#include "vsj/join/brute_force_join.h"

namespace vsj {
namespace {

std::vector<std::pair<VectorId, VectorId>> Normalize(
    std::vector<JoinPair> pairs) {
  std::vector<std::pair<VectorId, VectorId>> out;
  out.reserve(pairs.size());
  for (const JoinPair& p : pairs) out.emplace_back(p.first, p.second);
  std::sort(out.begin(), out.end());
  return out;
}

TEST(AllPairsJoinTest, TinyDatasetMatchesBruteForce) {
  VectorDataset dataset;
  dataset.Add(SparseVector::FromDims({1, 2}));
  dataset.Add(SparseVector::FromDims({1, 2}));
  dataset.Add(SparseVector::FromDims({2, 3}));
  dataset.Add(SparseVector::FromDims({9}));
  for (double tau : {0.3, 0.5, 0.9}) {
    EXPECT_EQ(
        Normalize(AllPairsJoin(dataset, tau)),
        Normalize(BruteForceJoinPairs(dataset, SimilarityMeasure::kCosine,
                                      tau)))
        << "tau = " << tau;
  }
}

TEST(AllPairsJoinTest, SimilaritiesAreExact) {
  VectorDataset dataset;
  dataset.Add(SparseVector({{1, 2.0f}, {2, 1.0f}}));
  dataset.Add(SparseVector({{1, 1.0f}, {2, 2.0f}}));
  const auto pairs = AllPairsJoin(dataset, 0.5);
  ASSERT_EQ(pairs.size(), 1u);
  // Normalized weights are stored as float postings; tolerance reflects
  // single-precision rounding of the per-feature quotients.
  EXPECT_NEAR(pairs[0].similarity,
              CosineSimilarity(dataset[0], dataset[1]), 1e-6);
}

TEST(AllPairsJoinTest, EmptyAndSingletonInputs) {
  VectorDataset empty;
  EXPECT_TRUE(AllPairsJoin(empty, 0.5).empty());
  VectorDataset one;
  one.Add(SparseVector::FromDims({1}));
  EXPECT_TRUE(AllPairsJoin(one, 0.5).empty());
}

TEST(AllPairsJoinTest, ZeroVectorNeverJoins) {
  VectorDataset dataset;
  dataset.Add(SparseVector());  // empty vector, norm 0
  dataset.Add(SparseVector::FromDims({1}));
  dataset.Add(SparseVector::FromDims({1}));
  EXPECT_EQ(AllPairsJoinSize(dataset, 0.5), 1u);
}

TEST(AllPairsJoinTest, StatsAreConsistent) {
  VectorDataset dataset = GenerateCorpus(DblpLikeConfig(300, 11));
  AllPairsStats stats;
  const uint64_t size = AllPairsJoinSize(dataset, 0.6, &stats);
  EXPECT_EQ(stats.result_pairs, size);
  EXPECT_LE(stats.result_pairs, stats.verifications);
  EXPECT_EQ(stats.candidates_admitted, stats.verifications);
}

TEST(AllPairsJoinTest, PruningNeverLosesPairs) {
  // Higher thresholds prune more candidates but results stay exact.
  VectorDataset dataset = GenerateCorpus(DblpLikeConfig(250, 13));
  AllPairsStats loose, tight;
  const uint64_t j_low = AllPairsJoinSize(dataset, 0.4, &loose);
  const uint64_t j_high = AllPairsJoinSize(dataset, 0.8, &tight);
  EXPECT_GE(j_low, j_high);
  EXPECT_GE(loose.candidates_admitted, tight.candidates_admitted);
}

TEST(AllPairsJoinDeathTest, RequiresPositiveThreshold) {
  VectorDataset dataset;
  dataset.Add(SparseVector::FromDims({1}));
  dataset.Add(SparseVector::FromDims({2}));
  EXPECT_DEATH(AllPairsJoin(dataset, 0.0), "positive threshold");
}

// Property sweep: random corpora at several thresholds vs brute force.
class AllPairsPropertyTest
    : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(AllPairsPropertyTest, MatchesBruteForce) {
  const auto [seed, tau] = GetParam();
  CorpusConfig config = DblpLikeConfig(200, seed);
  config.cluster_fraction = 0.2;  // ensure some joining pairs
  VectorDataset dataset = GenerateCorpus(config);
  EXPECT_EQ(AllPairsJoinSize(dataset, tau),
            BruteForceJoinSize(dataset, SimilarityMeasure::kCosine, tau));
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndThresholds, AllPairsPropertyTest,
    ::testing::Combine(::testing::Values(1, 2, 3),
                       ::testing::Values(0.3, 0.5, 0.7, 0.9)));

}  // namespace
}  // namespace vsj
