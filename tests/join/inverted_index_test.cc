#include "vsj/join/inverted_index.h"

#include <gtest/gtest.h>

namespace vsj {
namespace {

VectorDataset SmallDataset() {
  VectorDataset dataset;
  dataset.Add(SparseVector({{0, 1.0f}, {2, 2.0f}}));
  dataset.Add(SparseVector({{2, 3.0f}, {5, 1.0f}}));
  dataset.Add(SparseVector({{0, 0.5f}, {5, 2.0f}}));
  return dataset;
}

TEST(InvertedIndexTest, PostingsContainAllOccurrences) {
  VectorDataset dataset = SmallDataset();
  InvertedIndex index(dataset);
  EXPECT_EQ(index.DocFrequency(0), 2u);
  EXPECT_EQ(index.DocFrequency(2), 2u);
  EXPECT_EQ(index.DocFrequency(5), 2u);
  EXPECT_EQ(index.DocFrequency(1), 0u);
}

TEST(InvertedIndexTest, PostingsSortedByVectorId) {
  VectorDataset dataset = SmallDataset();
  InvertedIndex index(dataset);
  for (DimId d = 0; d < 6; ++d) {
    const auto& postings = index.postings(d);
    for (size_t i = 1; i < postings.size(); ++i) {
      EXPECT_LT(postings[i - 1].id, postings[i].id);
    }
  }
}

TEST(InvertedIndexTest, PostingsCarryWeights) {
  VectorDataset dataset = SmallDataset();
  InvertedIndex index(dataset);
  const auto& postings = index.postings(2);
  ASSERT_EQ(postings.size(), 2u);
  EXPECT_FLOAT_EQ(postings[0].weight, 2.0f);
  EXPECT_FLOAT_EQ(postings[1].weight, 3.0f);
}

TEST(InvertedIndexTest, OutOfRangeDimensionIsEmpty) {
  VectorDataset dataset = SmallDataset();
  InvertedIndex index(dataset);
  EXPECT_TRUE(index.postings(1000).empty());
}

TEST(InvertedIndexTest, CandidateOperationCount) {
  VectorDataset dataset = SmallDataset();
  InvertedIndex index(dataset);
  // df = 2 for dims 0, 2, 5 → 3 · C(2,2) = 3.
  EXPECT_EQ(index.NumCandidateOperations(), 3u);
}

TEST(InvertedIndexTest, EmptyDataset) {
  VectorDataset dataset;
  InvertedIndex index(dataset);
  EXPECT_EQ(index.num_dimensions(), 0u);
  EXPECT_EQ(index.NumCandidateOperations(), 0u);
}

}  // namespace
}  // namespace vsj
