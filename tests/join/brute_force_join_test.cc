#include "vsj/join/brute_force_join.h"

#include <gtest/gtest.h>

namespace vsj {
namespace {

VectorDataset TriangleDataset() {
  // v0 == v1, v2 disjoint.
  VectorDataset dataset;
  dataset.Add(SparseVector::FromDims({1, 2}));
  dataset.Add(SparseVector::FromDims({1, 2}));
  dataset.Add(SparseVector::FromDims({8, 9}));
  return dataset;
}

TEST(BruteForceJoinTest, CountsIdenticalPairs) {
  VectorDataset dataset = TriangleDataset();
  EXPECT_EQ(BruteForceJoinSize(dataset, SimilarityMeasure::kCosine, 0.99), 1u);
  EXPECT_EQ(BruteForceJoinSize(dataset, SimilarityMeasure::kJaccard, 0.99),
            1u);
}

TEST(BruteForceJoinTest, ThresholdZeroCountsAllPairs) {
  VectorDataset dataset = TriangleDataset();
  EXPECT_EQ(BruteForceJoinSize(dataset, SimilarityMeasure::kCosine, 0.0), 3u);
}

TEST(BruteForceJoinTest, MonotoneInThreshold) {
  VectorDataset dataset = TriangleDataset();
  uint64_t prev = dataset.NumPairs();
  for (double tau : {0.1, 0.3, 0.5, 0.7, 0.9, 1.0}) {
    const uint64_t j =
        BruteForceJoinSize(dataset, SimilarityMeasure::kCosine, tau);
    EXPECT_LE(j, prev);
    prev = j;
  }
}

TEST(BruteForceJoinTest, PairsAreOrderedAndAboveThreshold) {
  VectorDataset dataset = TriangleDataset();
  const auto pairs =
      BruteForceJoinPairs(dataset, SimilarityMeasure::kCosine, 0.5);
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_EQ(pairs[0].first, 0u);
  EXPECT_EQ(pairs[0].second, 1u);
  EXPECT_DOUBLE_EQ(pairs[0].similarity, 1.0);
}

TEST(BruteForceJoinTest, GeneralJoinCountsOrderedCrossPairs) {
  VectorDataset left;
  left.Add(SparseVector::FromDims({1, 2}));
  left.Add(SparseVector::FromDims({5, 6}));
  VectorDataset right;
  right.Add(SparseVector::FromDims({1, 2}));
  right.Add(SparseVector::FromDims({1, 2, 3}));
  // (l0, r0) sim 1; (l0, r1) sim 2/sqrt(6) ≈ 0.816; l1 matches nothing.
  EXPECT_EQ(BruteForceGeneralJoinSize(left, right,
                                      SimilarityMeasure::kCosine, 0.9),
            1u);
  EXPECT_EQ(BruteForceGeneralJoinSize(left, right,
                                      SimilarityMeasure::kCosine, 0.8),
            2u);
  EXPECT_EQ(BruteForceGeneralJoinSize(left, right,
                                      SimilarityMeasure::kCosine, 0.0),
            4u);
}

TEST(BruteForceJoinTest, SingleVectorHasNoPairs) {
  VectorDataset dataset;
  dataset.Add(SparseVector::FromDims({1}));
  EXPECT_EQ(BruteForceJoinSize(dataset, SimilarityMeasure::kCosine, 0.0), 0u);
}

}  // namespace
}  // namespace vsj
