#include "vsj/join/similarity_histogram.h"

#include <numeric>

#include <gtest/gtest.h>

#include "vsj/gen/workloads.h"
#include "vsj/join/brute_force_join.h"

namespace vsj {
namespace {

TEST(SimilarityHistogramTest, ExactCountsMatchBruteForce) {
  VectorDataset dataset = GenerateCorpus(DblpLikeConfig(300, 1));
  const std::vector<double> taus = {0.1, 0.3, 0.5, 0.7, 0.9, 1.0};
  SimilarityHistogram hist(dataset, SimilarityMeasure::kCosine, taus);
  for (double tau : taus) {
    EXPECT_EQ(hist.CountAtLeast(tau),
              BruteForceJoinSize(dataset, SimilarityMeasure::kCosine, tau))
        << "tau = " << tau;
  }
}

TEST(SimilarityHistogramTest, JaccardExactCounts) {
  VectorDataset dataset = GenerateCorpus(DblpLikeConfig(200, 2));
  const std::vector<double> taus = {0.2, 0.5, 0.8};
  SimilarityHistogram hist(dataset, SimilarityMeasure::kJaccard, taus);
  for (double tau : taus) {
    EXPECT_EQ(hist.CountAtLeast(tau),
              BruteForceJoinSize(dataset, SimilarityMeasure::kJaccard, tau));
  }
}

TEST(SimilarityHistogramTest, ThresholdZeroReturnsAllPairs) {
  VectorDataset dataset = GenerateCorpus(DblpLikeConfig(100, 3));
  SimilarityHistogram hist(dataset, SimilarityMeasure::kCosine, {0.5});
  EXPECT_EQ(hist.CountAtLeast(0.0), dataset.NumPairs());
  EXPECT_EQ(hist.NumTotalPairs(), dataset.NumPairs());
}

TEST(SimilarityHistogramTest, BinsSumToPositivePairs) {
  VectorDataset dataset = GenerateCorpus(DblpLikeConfig(150, 4));
  SimilarityHistogram hist(dataset, SimilarityMeasure::kCosine, {0.5});
  const uint64_t bin_total = std::accumulate(
      hist.bins().begin(), hist.bins().end(), uint64_t{0});
  EXPECT_EQ(bin_total, hist.NumPositivePairs());
  EXPECT_LE(hist.NumPositivePairs(), hist.NumTotalPairs());
}

TEST(SimilarityHistogramTest, SingleThreadMatchesMultiThread) {
  VectorDataset dataset = GenerateCorpus(DblpLikeConfig(250, 5));
  const std::vector<double> taus = {0.3, 0.6, 0.9};
  SimilarityHistogram multi(dataset, SimilarityMeasure::kCosine, taus);
  SimilarityHistogram single(dataset, SimilarityMeasure::kCosine, taus, 1000,
                             1);
  for (double tau : taus) {
    EXPECT_EQ(multi.CountAtLeast(tau), single.CountAtLeast(tau));
  }
  EXPECT_EQ(multi.NumPositivePairs(), single.NumPositivePairs());
  EXPECT_EQ(multi.bins(), single.bins());
}

TEST(SimilarityHistogramTest, BinnedCountApproximatesExact) {
  VectorDataset dataset = GenerateCorpus(DblpLikeConfig(200, 6));
  SimilarityHistogram hist(dataset, SimilarityMeasure::kCosine,
                           {0.25, 0.5, 0.75});
  for (double tau : {0.25, 0.5, 0.75}) {
    const auto exact = static_cast<double>(hist.CountAtLeast(tau));
    const auto binned = static_cast<double>(hist.BinnedCountAtLeast(tau));
    // Bin edges align with multiples of 1/1000 so the only discrepancy is
    // pairs exactly on the boundary bin.
    EXPECT_NEAR(binned, exact, exact * 0.05 + 50);
  }
}

TEST(SimilarityHistogramTest, IdenticalVectorsLandInLastBin) {
  VectorDataset dataset;
  dataset.Add(SparseVector::FromDims({1, 2}));
  dataset.Add(SparseVector::FromDims({1, 2}));
  SimilarityHistogram hist(dataset, SimilarityMeasure::kCosine, {1.0}, 10);
  EXPECT_EQ(hist.bins().back(), 1u);
  EXPECT_EQ(hist.CountAtLeast(1.0), 1u);
}

TEST(SimilarityHistogramTest, TinyDatasets) {
  VectorDataset empty;
  SimilarityHistogram h0(empty, SimilarityMeasure::kCosine, {0.5});
  EXPECT_EQ(h0.NumTotalPairs(), 0u);
  VectorDataset one;
  one.Add(SparseVector::FromDims({1}));
  SimilarityHistogram h1(one, SimilarityMeasure::kCosine, {0.5});
  EXPECT_EQ(h1.CountAtLeast(0.5), 0u);
}

TEST(SimilarityHistogramDeathTest, UnregisteredThresholdAborts) {
  VectorDataset dataset;
  dataset.Add(SparseVector::FromDims({1}));
  dataset.Add(SparseVector::FromDims({2}));
  SimilarityHistogram hist(dataset, SimilarityMeasure::kCosine, {0.5});
  EXPECT_DEATH(hist.CountAtLeast(0.6), "not registered");
}

TEST(SimilarityHistogramDeathTest, RejectsOutOfRangeThreshold) {
  VectorDataset dataset;
  dataset.Add(SparseVector::FromDims({1}));
  EXPECT_DEATH(
      SimilarityHistogram(dataset, SimilarityMeasure::kCosine, {1.5}),
      "thresholds must lie");
}

}  // namespace
}  // namespace vsj
