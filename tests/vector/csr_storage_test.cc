#include "vsj/vector/csr_storage.h"

#include <vector>

#include <gtest/gtest.h>

#include "vsj/vector/dataset_view.h"
#include "vsj/vector/sparse_vector.h"

namespace vsj {
namespace {

SparseVector V(std::vector<DimId> dims) {
  return SparseVector::FromDims(std::move(dims));
}

TEST(CsrStorageTest, AppendPacksContiguously) {
  CsrStorage storage;
  const SparseVector a = V({1, 5});
  const SparseVector b = V({2});
  EXPECT_EQ(storage.Append(a), 0u);
  EXPECT_EQ(storage.Append(b), 1u);
  EXPECT_EQ(storage.size(), 2u);
  EXPECT_EQ(storage.total_features(), 3u);
  EXPECT_TRUE(storage[0] == a.ref());
  EXPECT_TRUE(storage[1] == b.ref());
  // Struct-of-arrays: consecutive vectors are adjacent in one buffer.
  EXPECT_EQ(storage[0].dims() + storage[0].size(), storage[1].dims());
}

TEST(CsrStorageTest, PreservesNorms) {
  CsrStorage storage;
  const SparseVector v({{0, 3.0f}, {1, 4.0f}});
  storage.Append(v);
  EXPECT_EQ(storage[0].norm(), v.norm());
  EXPECT_EQ(storage[0].l1_norm(), v.l1_norm());
}

TEST(CsrStorageTest, EmptyVectorsAreRepresentable) {
  CsrStorage storage;
  storage.Append(SparseVector().ref());
  storage.Append(V({7}));
  EXPECT_EQ(storage[0].size(), 0u);
  EXPECT_EQ(storage[1].size(), 1u);
}

StreamingStorageOptions TinyChunks() {
  StreamingStorageOptions options;
  options.chunk_features = 4;  // force multi-chunk quickly
  options.compact_dead_fraction = 0.5;
  options.min_dead_for_compaction = 3;
  return options;
}

TEST(StreamingCsrStorageTest, AppendAssignsStableSequentialIds) {
  StreamingCsrStorage store(TinyChunks());
  EXPECT_EQ(store.Append(V({1, 2})), 0u);
  EXPECT_EQ(store.Append(V({3, 4})), 1u);
  EXPECT_EQ(store.Append(V({5, 6})), 2u);  // spills into chunk 2
  EXPECT_GE(store.num_chunks(), 2u);
  EXPECT_TRUE(store.Contains(2));
  EXPECT_TRUE(store.Ref(2) == V({5, 6}).ref());
}

TEST(StreamingCsrStorageTest, RemoveTombstonesAndLiveIdsSkipThem) {
  StreamingCsrStorage store;
  for (DimId d = 0; d < 5; ++d) store.Append(V({d}));
  store.Remove(1);
  store.Remove(3);
  EXPECT_EQ(store.num_live(), 3u);
  EXPECT_FALSE(store.Contains(1));
  EXPECT_TRUE(store.Contains(2));
  EXPECT_EQ(store.live_ids(), (std::vector<VectorId>{0, 2, 4}));
}

TEST(StreamingCsrStorageTest, CompactionPreservesIdsAndPayloads) {
  StreamingCsrStorage store(TinyChunks());
  std::vector<SparseVector> originals;
  for (DimId d = 0; d < 12; ++d) {
    originals.push_back(V({d, d + 100}));
    store.Append(originals.back());
  }
  EXPECT_GT(store.num_chunks(), 1u);
  for (VectorId id = 0; id < 12; id += 2) store.Remove(id);

  store.Compact();
  EXPECT_EQ(store.num_chunks(), 1u);
  EXPECT_EQ(store.num_live(), 6u);
  for (VectorId id = 1; id < 12; id += 2) {
    ASSERT_TRUE(store.Contains(id));
    EXPECT_TRUE(store.Ref(id) == originals[id].ref()) << id;
  }
  for (VectorId id = 0; id < 12; id += 2) EXPECT_FALSE(store.Contains(id));
}

TEST(StreamingCsrStorageTest, ChurnTriggersAutomaticCompaction) {
  StreamingStorageOptions options;
  options.chunk_features = 8;
  options.compact_dead_fraction = 0.25;
  options.min_dead_for_compaction = 4;
  StreamingCsrStorage store(options);
  for (DimId d = 0; d < 16; ++d) store.Append(V({d}));
  EXPECT_EQ(store.compactions(), 0u);
  // 4 removals reach both the min-dead floor and the 25% dead fraction.
  for (VectorId id = 0; id < 4; ++id) store.Remove(id);
  EXPECT_EQ(store.compactions(), 1u);
  EXPECT_EQ(store.num_chunks(), 1u);
  // The trigger resets: the next removal alone must not re-compact.
  store.Remove(4);
  EXPECT_EQ(store.compactions(), 1u);
}

TEST(StreamingCsrStorageTest, AppendAfterCompactionKeepsIdSpace) {
  StreamingCsrStorage store(TinyChunks());
  for (DimId d = 0; d < 6; ++d) store.Append(V({d}));
  for (VectorId id = 0; id < 4; ++id) store.Remove(id);
  store.Compact();
  const VectorId next = store.Append(V({99}));
  EXPECT_EQ(next, 6u);  // ids of tombstoned vectors are never reused
  EXPECT_TRUE(store.Ref(next) == V({99}).ref());
}

TEST(StreamingCsrStorageTest, DisabledAutoCompactionLeavesChunksAlone) {
  StreamingStorageOptions options;
  options.compact_dead_fraction = 0.0;
  options.min_dead_for_compaction = 1;
  StreamingCsrStorage store(options);
  for (DimId d = 0; d < 8; ++d) store.Append(V({d}));
  for (VectorId id = 0; id < 8; ++id) {
    if (id != 3) store.Remove(id);
  }
  EXPECT_EQ(store.compactions(), 0u);
  EXPECT_EQ(store.num_live(), 1u);
}

TEST(DatasetViewTest, LiveViewIsDenseOverSurvivors) {
  StreamingCsrStorage store;
  store.Append(V({0}));
  store.Append(V({1}));
  store.Append(V({2}));
  store.Remove(1);
  const DatasetView view(store);
  ASSERT_EQ(view.size(), 2u);
  EXPECT_TRUE(view[0] == V({0}).ref());
  EXPECT_TRUE(view[1] == V({2}).ref());
  EXPECT_EQ(view.NumPairs(), 1u);
}

TEST(DatasetViewTest, IdAddressedViewResolvesRawIds) {
  StreamingCsrStorage store;
  store.Append(V({0}));
  store.Append(V({1}));
  store.Append(V({2}));
  store.Remove(1);
  const DatasetView view = DatasetView::IdAddressed(store);
  EXPECT_EQ(view.size(), 3u);  // the id space, tombstones included
  EXPECT_TRUE(view[2] == V({2}).ref());
}

TEST(DatasetViewTest, ViewsOverDatasetAndItsStorageAgree) {
  VectorDataset dataset("d");
  dataset.Add(V({1, 2}));
  dataset.Add(V({3}));
  const DatasetView a(dataset);
  const DatasetView b(dataset.storage());
  ASSERT_EQ(a.size(), b.size());
  for (VectorId id = 0; id < a.size(); ++id) EXPECT_TRUE(a[id] == b[id]);
  EXPECT_EQ(a.name(), "d");
  EXPECT_EQ(b.name(), "");  // a bare arena carries no name
}

TEST(DatasetViewTest, ComputeStatsEquivalentAcrossBackings) {
  VectorDataset dataset;
  dataset.Add(V({0, 1, 2}));
  dataset.Add(V({5}));
  StreamingCsrStorage store;
  store.Append(V({9}));  // junk, removed below
  for (VectorRef v : DatasetView(dataset)) store.Append(v);
  store.Remove(0);

  const DatasetStats a = ComputeStats(DatasetView(dataset));
  const DatasetStats b = ComputeStats(DatasetView(store));
  EXPECT_EQ(a.num_vectors, b.num_vectors);
  EXPECT_EQ(a.total_features, b.total_features);
  EXPECT_EQ(a.num_dimensions, b.num_dimensions);
  EXPECT_EQ(a.min_features, b.min_features);
  EXPECT_EQ(a.max_features, b.max_features);
}

}  // namespace
}  // namespace vsj
