#include "vsj/vector/vector_dataset.h"

#include <gtest/gtest.h>

namespace vsj {
namespace {

TEST(VectorDatasetTest, EmptyDataset) {
  VectorDataset dataset("empty");
  EXPECT_TRUE(dataset.empty());
  EXPECT_EQ(dataset.NumPairs(), 0u);
  const DatasetStats stats = dataset.ComputeStats();
  EXPECT_EQ(stats.num_vectors, 0u);
}

TEST(VectorDatasetTest, AddReturnsSequentialIds) {
  VectorDataset dataset;
  EXPECT_EQ(dataset.Add(SparseVector::FromDims({1})), 0u);
  EXPECT_EQ(dataset.Add(SparseVector::FromDims({2})), 1u);
  EXPECT_EQ(dataset.size(), 2u);
}

TEST(VectorDatasetTest, NumPairsIsChoose2) {
  VectorDataset dataset;
  for (int i = 0; i < 10; ++i) dataset.Add(SparseVector::FromDims({1}));
  EXPECT_EQ(dataset.NumPairs(), 45u);
}

TEST(VectorDatasetTest, StatsAggregation) {
  VectorDataset dataset("stats");
  dataset.Add(SparseVector::FromDims({0, 1, 2}));      // 3 features
  dataset.Add(SparseVector::FromDims({5}));            // 1 feature
  dataset.Add(SparseVector::FromDims({1, 9}));         // 2 features
  const DatasetStats stats = dataset.ComputeStats();
  EXPECT_EQ(stats.num_vectors, 3u);
  EXPECT_EQ(stats.total_features, 6u);
  EXPECT_DOUBLE_EQ(stats.avg_features, 2.0);
  EXPECT_EQ(stats.min_features, 1u);
  EXPECT_EQ(stats.max_features, 3u);
  EXPECT_EQ(stats.num_dimensions, 10u);  // max dim 9 + 1
  EXPECT_EQ(dataset.name(), "stats");
}

TEST(VectorDatasetTest, AccessByIndex) {
  VectorDataset dataset;
  dataset.Add(SparseVector::FromDims({7}));
  EXPECT_EQ(dataset[0].size(), 1u);
  EXPECT_EQ(dataset[0][0].dim, 7u);
}

TEST(VectorDatasetTest, EmptyDatasetStatsAreAllZero) {
  const DatasetStats stats = VectorDataset().ComputeStats();
  EXPECT_EQ(stats.num_vectors, 0u);
  EXPECT_EQ(stats.num_dimensions, 0u);
  EXPECT_EQ(stats.total_features, 0u);
  EXPECT_DOUBLE_EQ(stats.avg_features, 0.0);
  EXPECT_EQ(stats.min_features, 0u);
  EXPECT_EQ(stats.max_features, 0u);
}

TEST(VectorDatasetTest, AllEmptyVectorStatsAreZeroedNotUndefined) {
  VectorDataset dataset;
  dataset.Add(SparseVector());
  dataset.Add(SparseVector());
  const DatasetStats stats = dataset.ComputeStats();
  EXPECT_EQ(stats.num_vectors, 2u);
  EXPECT_EQ(stats.num_dimensions, 0u);
  EXPECT_EQ(stats.total_features, 0u);
  EXPECT_DOUBLE_EQ(stats.avg_features, 0.0);
  // min_features = 0 is the defined answer here (a vector has no
  // features), indistinguishable by design from the empty-dataset zero.
  EXPECT_EQ(stats.min_features, 0u);
  EXPECT_EQ(stats.max_features, 0u);
}

TEST(VectorDatasetTest, MixedEmptyAndNonEmptyVectorsKeepMinAtZero) {
  VectorDataset dataset;
  dataset.Add(SparseVector::FromDims({1, 2}));
  dataset.Add(SparseVector());
  const DatasetStats stats = dataset.ComputeStats();
  EXPECT_EQ(stats.min_features, 0u);
  EXPECT_EQ(stats.max_features, 2u);
  EXPECT_EQ(stats.total_features, 2u);
}

}  // namespace
}  // namespace vsj
