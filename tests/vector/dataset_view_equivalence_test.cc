// The DatasetView equivalence suite: every registered estimator must
// produce bit-identical estimates no matter which storage backs the view —
// the owning VectorDataset, a bare CSR arena holding the same payloads, or
// a streaming store that went through appends, tombstone removals and a
// compaction before presenting the same live set. This is the contract
// that lets one estimator implementation serve both the static and the
// streaming engine.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "test_util.h"
#include "vsj/core/estimator_registry.h"
#include "vsj/lsh/lsh_index.h"
#include "vsj/lsh/simhash.h"
#include "vsj/util/rng.h"
#include "vsj/util/thread_pool.h"
#include "vsj/vector/csr_storage.h"
#include "vsj/vector/dataset_view.h"

namespace vsj {
namespace {

constexpr uint64_t kSeed = 0xfeed5eedULL;
constexpr uint32_t kK = 8;

/// One storage backend presenting the corpus, with its own index (built
/// over the backend's view, not shared — an identical build is part of the
/// equivalence being tested).
struct Backend {
  std::string label;
  DatasetView view;
  std::unique_ptr<LshIndex> index;
};

class DatasetViewEquivalenceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dataset_ = testing::SmallClusteredCorpus(300, 7);
    family_ = std::make_unique<SimHashFamily>(kSeed);

    // Backend B: the same payloads appended into a bare CSR arena.
    for (VectorRef v : DatasetView(dataset_)) csr_.Append(v);

    // Backend C: a streaming store churned with interleaved junk vectors,
    // tombstoned again, then compacted — the survivors are exactly the
    // corpus, in order.
    StreamingStorageOptions storage_options;
    storage_options.chunk_features = 1024;       // force many chunks
    storage_options.compact_dead_fraction = 0.0;  // compact manually below
    streaming_ = std::make_unique<StreamingCsrStorage>(storage_options);
    std::vector<VectorId> junk;
    for (VectorId id = 0; id < dataset_.size(); ++id) {
      if (id % 3 == 0) {
        junk.push_back(
            streaming_->Append(SparseVector::FromDims({id, id + 1}).ref()));
      }
      streaming_->Append(dataset_[id]);
    }
    for (VectorId id : junk) streaming_->Remove(id);
    streaming_->Compact();
    ASSERT_EQ(streaming_->num_live(), dataset_.size());

    for (auto& [label, view] :
         std::vector<std::pair<std::string, DatasetView>>{
             {"VectorDataset", DatasetView(dataset_)},
             {"CsrStorage", DatasetView(csr_)},
             {"Streaming(churned+compacted)", DatasetView(*streaming_)}}) {
      Backend backend;
      backend.label = label;
      backend.view = view;
      backend.index = std::make_unique<LshIndex>(*family_, view, kK, 2);
      backends_.push_back(std::move(backend));
    }
  }

  EstimatorContext ContextFor(const Backend& backend) const {
    EstimatorContext context;
    context.dataset = backend.view;
    context.index = backend.index.get();
    context.measure = SimilarityMeasure::kCosine;
    return context;
  }

  VectorDataset dataset_;
  CsrStorage csr_;
  std::unique_ptr<StreamingCsrStorage> streaming_;
  std::unique_ptr<SimHashFamily> family_;
  std::vector<Backend> backends_;
};

TEST_F(DatasetViewEquivalenceTest, ViewsPresentIdenticalVectors) {
  for (const Backend& backend : backends_) {
    ASSERT_EQ(backend.view.size(), dataset_.size()) << backend.label;
    for (VectorId id = 0; id < dataset_.size(); ++id) {
      ASSERT_TRUE(backend.view[id] == dataset_[id])
          << backend.label << " vector " << id;
    }
  }
}

TEST_F(DatasetViewEquivalenceTest, AllEstimatorsAreBitIdenticalAcrossViews) {
  for (const std::string& name : AllEstimatorNames()) {
    std::vector<std::unique_ptr<JoinSizeEstimator>> estimators;
    for (const Backend& backend : backends_) {
      estimators.push_back(CreateEstimator(name, ContextFor(backend)));
    }
    for (const double tau : {0.3, 0.6, 0.9}) {
      // Same-seeded RNG per backend: identical storage contents must give
      // identical draws and identical arithmetic.
      std::vector<EstimationResult> results;
      for (auto& estimator : estimators) {
        Rng rng(kSeed ^ static_cast<uint64_t>(tau * 1024));
        results.push_back(estimator->Estimate(tau, rng));
      }
      for (size_t b = 1; b < results.size(); ++b) {
        EXPECT_EQ(results[b].estimate, results[0].estimate)
            << name << " tau=" << tau << " backend=" << backends_[b].label;
        EXPECT_EQ(results[b].pairs_evaluated, results[0].pairs_evaluated)
            << name << " tau=" << tau << " backend=" << backends_[b].label;
      }
    }
  }
}

// The headline estimators, run as value-derived trial batches at 1 and 4
// threads over every backend: all 2 × 3 result vectors must agree
// bit-for-bit (thread count and storage are both irrelevant to results).
TEST_F(DatasetViewEquivalenceTest, TrialBatchesAgreeAtOneAndFourThreads) {
  constexpr size_t kTrials = 16;
  const double tau = 0.6;
  for (const std::string& name : HeadlineEstimatorNames()) {
    std::vector<double> reference;
    for (const Backend& backend : backends_) {
      const auto estimator = CreateEstimator(name, ContextFor(backend));
      for (const size_t threads : {size_t{1}, size_t{4}}) {
        ThreadPool pool(threads);
        std::vector<double> estimates(kTrials);
        const Rng base(kSeed + 17);
        pool.ParallelFor(kTrials, [&](size_t t) {
          Rng rng = base.Fork(t);
          estimates[t] = estimator->Estimate(tau, rng).estimate;
        });
        if (reference.empty()) {
          reference = estimates;
        } else {
          EXPECT_EQ(estimates, reference)
              << name << " backend=" << backend.label
              << " threads=" << threads;
        }
      }
    }
  }
}

}  // namespace
}  // namespace vsj
