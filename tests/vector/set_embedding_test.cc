#include "vsj/vector/set_embedding.h"

#include "vsj/vector/sparse_vector.h"

#include <gtest/gtest.h>

#include "vsj/util/rng.h"
#include "vsj/vector/similarity.h"

namespace vsj {
namespace {

TEST(SetEmbeddingTest, BinaryVectorIdentityEmbedding) {
  SparseVector v = SparseVector::FromDims({3, 7});
  const auto elements = EmbedAsSet(v, 1.0);
  ASSERT_EQ(elements.size(), 2u);
  EXPECT_EQ(elements[0].dim, 3u);
  EXPECT_EQ(elements[0].copy, 0u);
  EXPECT_EQ(elements[1].dim, 7u);
}

TEST(SetEmbeddingTest, WeightsRoundToCopies) {
  SparseVector v({{1, 2.6f}, {2, 0.2f}});
  const auto elements = EmbedAsSet(v, 1.0);
  // 2.6 rounds to 3 copies; 0.2 rounds to 0 but is clamped to 1 copy.
  ASSERT_EQ(elements.size(), 4u);
  EXPECT_EQ(elements[0].dim, 1u);
  EXPECT_EQ(elements[2].copy, 2u);
  EXPECT_EQ(elements[3].dim, 2u);
}

TEST(SetEmbeddingTest, ResolutionScalesCopies) {
  SparseVector v({{1, 1.0f}});
  EXPECT_EQ(EmbedAsSet(v, 0.5).size(), 2u);
  EXPECT_EQ(EmbedAsSet(v, 0.25).size(), 4u);
}

TEST(EmbeddedJaccardTest, MatchesSetJaccardOnBinary) {
  SparseVector a = SparseVector::FromDims({1, 2, 3});
  SparseVector b = SparseVector::FromDims({2, 3, 4, 5});
  EXPECT_DOUBLE_EQ(EmbeddedJaccard(a, b, 1.0), JaccardSimilarity(a, b));
}

TEST(EmbeddedJaccardTest, IdenticalIsOne) {
  SparseVector a({{1, 2.5f}, {4, 0.5f}});
  EXPECT_DOUBLE_EQ(EmbeddedJaccard(a, a, 0.1), 1.0);
}

TEST(EmbeddedJaccardTest, ConvergesToWeightedJaccard) {
  Rng rng(77);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<Feature> fa, fb;
    for (int i = 0; i < 6; ++i) {
      fa.push_back(Feature{static_cast<DimId>(rng.Below(10)),
                           static_cast<float>(0.2 + rng.NextDouble())});
      fb.push_back(Feature{static_cast<DimId>(rng.Below(10)),
                           static_cast<float>(0.2 + rng.NextDouble())});
    }
    SparseVector a(fa), b(fb);
    const double weighted = JaccardSimilarity(a, b);
    const double embedded = EmbeddedJaccard(a, b, 0.001);
    EXPECT_NEAR(embedded, weighted, 0.01);
  }
}

TEST(EmbeddedJaccardTest, EmptyVectors) {
  SparseVector a;
  EXPECT_DOUBLE_EQ(EmbeddedJaccard(a, a, 1.0), 0.0);
}

TEST(SetEmbeddingDeathTest, RejectsNonPositiveResolution) {
  SparseVector v = SparseVector::FromDims({1});
  EXPECT_DEATH(EmbedAsSet(v, 0.0), "CHECK");
}

}  // namespace
}  // namespace vsj
