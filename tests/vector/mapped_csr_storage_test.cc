// MappedCsrStorage: zero-copy open of VSJB v2 files, error paths, the
// CsrStorage::FromMapped escape hatch, and — the contract that matters —
// bit-identical estimates from every registered estimator over mapped vs
// heap storage (the mmap leg of the DatasetView equivalence suite).

#include "vsj/vector/mapped_csr_storage.h"

#include <cstdio>
#include <fstream>
#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "test_util.h"
#include "vsj/core/estimator_registry.h"
#include "vsj/io/dataset_io.h"
#include "vsj/lsh/lsh_index.h"
#include "vsj/lsh/simhash.h"
#include "vsj/util/rng.h"
#include "vsj/vector/dataset_view.h"

namespace vsj {
namespace {

class MappedCsrStorageTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dataset_ = testing::SmallClusteredCorpus(250, 11);
    path_ = ::testing::TempDir() + "/vsj_mapped_test.vsjb";
    ASSERT_TRUE(SaveDatasetToFile(dataset_, path_).ok());
  }

  void TearDown() override { std::remove(path_.c_str()); }

  VectorDataset dataset_;
  std::string path_;
};

TEST_F(MappedCsrStorageTest, PresentsIdenticalVectors) {
  MappedCsrStorage mapped;
  ASSERT_TRUE(MappedCsrStorage::Open(path_, &mapped).ok());
  ASSERT_EQ(mapped.size(), dataset_.size());
  EXPECT_EQ(mapped.name(), dataset_.name());
  EXPECT_EQ(mapped.total_features(), dataset_.storage().total_features());
  for (VectorId id = 0; id < dataset_.size(); ++id) {
    ASSERT_TRUE(mapped[id] == dataset_[id]) << "vector " << id;
    // Norms load verbatim from the file pages.
    EXPECT_EQ(mapped[id].norm(), dataset_[id].norm());
    EXPECT_EQ(mapped[id].l1_norm(), dataset_[id].l1_norm());
  }
}

TEST_F(MappedCsrStorageTest, DatasetViewOverMappedStorage) {
  MappedCsrStorage mapped;
  ASSERT_TRUE(MappedCsrStorage::Open(path_, &mapped).ok());
  const DatasetView view(mapped);
  ASSERT_TRUE(view.valid());
  EXPECT_EQ(view.size(), dataset_.size());
  EXPECT_EQ(view.name(), dataset_.name());
  const DatasetStats heap_stats = dataset_.ComputeStats();
  const DatasetStats mapped_stats = ComputeStats(view);
  EXPECT_EQ(heap_stats.total_features, mapped_stats.total_features);
  EXPECT_EQ(heap_stats.num_dimensions, mapped_stats.num_dimensions);
}

TEST_F(MappedCsrStorageTest, AllEstimatorsBitIdenticalOverMappedVsHeap) {
  MappedCsrStorage mapped;
  ASSERT_TRUE(MappedCsrStorage::Open(path_, &mapped).ok());
  constexpr uint64_t kSeed = 0x5eedf11eULL;
  constexpr uint32_t kK = 8;
  SimHashFamily family(kSeed);

  struct Side {
    DatasetView view;
    std::unique_ptr<LshIndex> index;
  };
  Side heap{DatasetView(dataset_), nullptr};
  Side disk{DatasetView(mapped), nullptr};
  heap.index = std::make_unique<LshIndex>(family, heap.view, kK, 2);
  disk.index = std::make_unique<LshIndex>(family, disk.view, kK, 2);

  for (const std::string& name : AllEstimatorNames()) {
    EstimatorContext heap_context;
    heap_context.dataset = heap.view;
    heap_context.index = heap.index.get();
    heap_context.measure = SimilarityMeasure::kCosine;
    EstimatorContext disk_context = heap_context;
    disk_context.dataset = disk.view;
    disk_context.index = disk.index.get();
    const auto heap_estimator = CreateEstimator(name, heap_context);
    const auto disk_estimator = CreateEstimator(name, disk_context);
    for (const double tau : {0.4, 0.7, 0.9}) {
      Rng heap_rng(kSeed + 99);
      Rng disk_rng(kSeed + 99);
      const EstimationResult a = heap_estimator->Estimate(tau, heap_rng);
      const EstimationResult b = disk_estimator->Estimate(tau, disk_rng);
      EXPECT_EQ(a.estimate, b.estimate) << name << " tau=" << tau;
      EXPECT_EQ(a.pairs_evaluated, b.pairs_evaluated)
          << name << " tau=" << tau;
    }
  }
}

TEST_F(MappedCsrStorageTest, FromMappedCopiesVerbatim) {
  MappedCsrStorage mapped;
  ASSERT_TRUE(MappedCsrStorage::Open(path_, &mapped).ok());
  const CsrStorage copy = CsrStorage::FromMapped(mapped);
  ASSERT_EQ(copy.size(), dataset_.size());
  for (VectorId id = 0; id < dataset_.size(); ++id) {
    ASSERT_TRUE(copy[id] == dataset_[id]) << "vector " << id;
    EXPECT_EQ(copy[id].norm(), dataset_[id].norm());
  }
}

TEST_F(MappedCsrStorageTest, OpenMissingFileIsNotFound) {
  MappedCsrStorage mapped;
  const IoStatus status =
      MappedCsrStorage::Open("/nonexistent/file.vsjb", &mapped);
  EXPECT_EQ(status.code, IoError::kNotFound);
  EXPECT_FALSE(mapped.mapped());
}

TEST_F(MappedCsrStorageTest, OpenV1FileExplainsItCannotBeMapped) {
  const std::string v1_path = ::testing::TempDir() + "/vsj_mapped_v1.vsjd";
  {
    std::ofstream os(v1_path, std::ios::binary);
    ASSERT_TRUE(WriteDatasetV1(dataset_, os).ok());
  }
  MappedCsrStorage mapped;
  const IoStatus status = MappedCsrStorage::Open(v1_path, &mapped);
  EXPECT_EQ(status.code, IoError::kUnsupportedVersion);
  EXPECT_NE(status.reason.find("re-save"), std::string::npos)
      << status.ToString();
  std::remove(v1_path.c_str());
}

TEST_F(MappedCsrStorageTest, OpenDetectsBitRotViaChecksums) {
  {
    std::fstream f(path_, std::ios::binary | std::ios::in | std::ios::out);
    f.seekg(-2, std::ios::end);
    const char original_byte = static_cast<char>(f.get());
    f.seekp(-2, std::ios::end);
    f.put(static_cast<char>(original_byte ^ 0x10));
  }
  MappedCsrStorage mapped;
  const IoStatus status = MappedCsrStorage::Open(path_, &mapped);
  EXPECT_EQ(status.code, IoError::kChecksumMismatch);
  EXPECT_FALSE(mapped.mapped());

  // Skipping verification opens the damaged file without complaint — the
  // documented trade-off of the O(mmap) fast path.
  MappedCsrStorage::OpenOptions unverified;
  unverified.verify_checksums = false;
  EXPECT_TRUE(MappedCsrStorage::Open(path_, &mapped, unverified).ok());
}

TEST_F(MappedCsrStorageTest, OpenTruncatedFileIsCorrupt) {
  std::string bytes;
  {
    std::ifstream is(path_, std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(is),
                 std::istreambuf_iterator<char>());
  }
  const std::string truncated_path =
      ::testing::TempDir() + "/vsj_mapped_truncated.vsjb";
  {
    std::ofstream os(truncated_path, std::ios::binary);
    os.write(bytes.data(), static_cast<std::streamsize>(bytes.size() / 3));
  }
  MappedCsrStorage mapped;
  const IoStatus status = MappedCsrStorage::Open(truncated_path, &mapped);
  EXPECT_EQ(status.code, IoError::kCorrupt);
  std::remove(truncated_path.c_str());
}

}  // namespace
}  // namespace vsj
