#include "vsj/vector/similarity.h"

#include "vsj/vector/sparse_vector.h"

#include <cmath>

#include <gtest/gtest.h>

#include "vsj/util/rng.h"

namespace vsj {
namespace {

SparseVector RandomVector(Rng& rng, int dims, int len) {
  std::vector<Feature> features;
  for (int i = 0; i < len; ++i) {
    features.push_back(
        Feature{static_cast<DimId>(rng.Below(dims)),
                static_cast<float>(0.1 + rng.NextDouble() * 2.0)});
  }
  return SparseVector(std::move(features));
}

TEST(CosineTest, IdenticalVectorsHaveSimilarityOne) {
  SparseVector v({{1, 2.0f}, {5, 3.0f}});
  EXPECT_DOUBLE_EQ(CosineSimilarity(v, v), 1.0);
}

TEST(CosineTest, ScalingInvariance) {
  SparseVector v({{1, 2.0f}, {5, 3.0f}});
  SparseVector w({{1, 4.0f}, {5, 6.0f}});
  EXPECT_NEAR(CosineSimilarity(v, w), 1.0, 1e-12);
}

TEST(CosineTest, OrthogonalVectors) {
  SparseVector a = SparseVector::FromDims({1, 2});
  SparseVector b = SparseVector::FromDims({3, 4});
  EXPECT_DOUBLE_EQ(CosineSimilarity(a, b), 0.0);
}

TEST(CosineTest, KnownValue) {
  // cos between (1,1,0) and (0,1,1) is 1/2.
  SparseVector a = SparseVector::FromDims({0, 1});
  SparseVector b = SparseVector::FromDims({1, 2});
  EXPECT_NEAR(CosineSimilarity(a, b), 0.5, 1e-12);
}

TEST(CosineTest, EmptyVectorGivesZero) {
  SparseVector a;
  SparseVector b = SparseVector::FromDims({1});
  EXPECT_DOUBLE_EQ(CosineSimilarity(a, b), 0.0);
  EXPECT_DOUBLE_EQ(CosineSimilarity(a, a), 0.0);
}

TEST(JaccardTest, BinaryVectorsMatchSetJaccard) {
  SparseVector a = SparseVector::FromDims({1, 2, 3});
  SparseVector b = SparseVector::FromDims({2, 3, 4, 5});
  // |∩| = 2, |∪| = 5.
  EXPECT_NEAR(JaccardSimilarity(a, b), 0.4, 1e-12);
}

TEST(JaccardTest, IdenticalIsOne) {
  SparseVector a({{1, 0.5f}, {9, 2.0f}});
  EXPECT_DOUBLE_EQ(JaccardSimilarity(a, a), 1.0);
}

TEST(JaccardTest, DisjointIsZero) {
  SparseVector a = SparseVector::FromDims({1});
  SparseVector b = SparseVector::FromDims({2});
  EXPECT_DOUBLE_EQ(JaccardSimilarity(a, b), 0.0);
}

TEST(JaccardTest, WeightedMinOverMax) {
  SparseVector a({{1, 2.0f}, {2, 1.0f}});
  SparseVector b({{1, 1.0f}, {2, 3.0f}});
  // min: 1 + 1 = 2, max: 2 + 3 = 5.
  EXPECT_NEAR(JaccardSimilarity(a, b), 0.4, 1e-12);
}

TEST(JaccardTest, EmptyVectorsGiveZero) {
  SparseVector a;
  EXPECT_DOUBLE_EQ(JaccardSimilarity(a, a), 0.0);
}

TEST(SimilarityDispatchTest, MatchesDirectCalls) {
  SparseVector a({{1, 2.0f}, {2, 1.0f}});
  SparseVector b({{1, 1.0f}, {3, 3.0f}});
  EXPECT_DOUBLE_EQ(Similarity(SimilarityMeasure::kCosine, a, b),
                   CosineSimilarity(a, b));
  EXPECT_DOUBLE_EQ(Similarity(SimilarityMeasure::kJaccard, a, b),
                   JaccardSimilarity(a, b));
}

TEST(SimilarityDispatchTest, Names) {
  EXPECT_STREQ(SimilarityMeasureName(SimilarityMeasure::kCosine), "cosine");
  EXPECT_STREQ(SimilarityMeasureName(SimilarityMeasure::kJaccard), "jaccard");
}

// Property sweep: similarity axioms on random vectors.
class SimilarityPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(SimilarityPropertyTest, RangeSymmetryAndSelfSimilarity) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 50; ++trial) {
    SparseVector a = RandomVector(rng, 30, 8);
    SparseVector b = RandomVector(rng, 30, 8);
    for (auto measure :
         {SimilarityMeasure::kCosine, SimilarityMeasure::kJaccard}) {
      const double s_ab = Similarity(measure, a, b);
      const double s_ba = Similarity(measure, b, a);
      EXPECT_DOUBLE_EQ(s_ab, s_ba);
      EXPECT_GE(s_ab, 0.0);
      EXPECT_LE(s_ab, 1.0);
      EXPECT_DOUBLE_EQ(Similarity(measure, a, a), 1.0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimilarityPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace vsj
