// Bit-identity and correctness suite for the batch pair-evaluation engine
// (vector/pair_eval.h). The contract under test, from DESIGN.md "Batch pair
// evaluation":
//
//  * Every dispatched width of the sparse-intersection kernel — scalar
//    merge, galloping merge, SSE2 window, the AVX2 small-vector fast paths
//    (long side <= 16 and 17..32 dims) and the AVX2 window — returns doubles
//    bit-identical to a plain linear merge, because only the *search* for
//    matching dims is vectorized while the FP accumulation stays scalar in
//    increasing-dimension order.
//  * Degenerate pairs (an empty side, fully disjoint dim ranges) short-
//    circuit to {0.0, 0} before any level-specific code runs.
//  * EvaluatePairBatch's hit mask equals the unbatched Similarity() loop
//    bit for bit, keyed by original batch index, regardless of the internal
//    locality reordering; CountPairsAtOrAbove is invariant under any
//    permutation of its pair list.
//
// CI runs this binary twice — default dispatch and VSJ_FORCE_SCALAR=1 —
// like the hashing-side simd_dispatch_test.

#include "vsj/vector/pair_eval.h"

#include <algorithm>
#include <cstdint>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "test_util.h"
#include "vsj/core/estimator_registry.h"
#include "vsj/lsh/lsh_index.h"
#include "vsj/lsh/minhash.h"
#include "vsj/util/cpu.h"
#include "vsj/util/rng.h"
#include "vsj/vector/csr_storage.h"
#include "vsj/vector/dataset_view.h"
#include "vsj/vector/similarity.h"
#include "vsj/vector/sparse_vector.h"
#include "vsj/vector/vector_dataset.h"

namespace vsj {
namespace {

constexpr uint64_t kSeed = 0x9a17e7a1ULL;

std::vector<SimdLevel> SupportedLevels() {
  std::vector<SimdLevel> levels = {SimdLevel::kScalar};
  const SimdLevel detected = DetectSimdLevel();
  if (detected >= SimdLevel::kSse2) levels.push_back(SimdLevel::kSse2);
  if (detected >= SimdLevel::kAvx2) levels.push_back(SimdLevel::kAvx2);
  return levels;
}

template <typename Body>
auto RunAtEveryLevel(Body&& body) -> std::vector<decltype(body())> {
  std::vector<decltype(body())> results;
  for (const SimdLevel level : SupportedLevels()) {
    EXPECT_EQ(SetSimdLevelForTest(level), level)
        << "host cannot force " << SimdLevelName(level);
    results.push_back(body());
  }
  ResetSimdLevelForTest();
  return results;
}

/// The reference the kernels are measured against: a plain linear merge,
/// no gallop, no windows — one double multiply + add per match in
/// increasing-dimension order. Written locally so a bug in the production
/// scalar path cannot hide by also being the oracle.
PairDotResult ReferenceDotCount(VectorRef a, VectorRef b) {
  PairDotResult r;
  size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a.dim(i) < b.dim(j)) {
      ++i;
    } else if (a.dim(i) > b.dim(j)) {
      ++j;
    } else {
      r.dot += static_cast<double>(a.weight(i)) * b.weight(j);
      ++r.matches;
      ++i;
      ++j;
    }
  }
  return r;
}

/// Random strictly-increasing dims: `len` distinct ids from [0, range),
/// weights in (0.1, 2.1). `range` controls intersection density — a tight
/// range forces dense overlap, a wide one makes matches rare.
SparseVector RandomSortedVector(Rng& rng, size_t len, uint32_t range) {
  std::set<DimId> dims;
  while (dims.size() < len) {
    dims.insert(static_cast<DimId>(rng.Below(range)));
  }
  std::vector<Feature> features;
  features.reserve(len);
  for (const DimId d : dims) {
    features.push_back(
        Feature{d, static_cast<float>(0.1 + rng.NextDouble() * 2.0)});
  }
  return SparseVector(std::move(features));
}

// ---------------------------------------------------------------------------
// Satellite regression: degenerate pairs must short-circuit identically at
// every level. Empty sides and fully disjoint dim ranges return {0.0, 0}
// before any kernel-specific code runs, so scalar and SIMD cannot diverge
// even in principle.

TEST(PairEvalTest, EmptyAndDisjointPairsShortCircuitAtEveryLevel) {
  const SparseVector empty;
  const SparseVector low = SparseVector::FromDims({1, 4, 9});
  const SparseVector high = SparseVector::FromDims({1000, 1004, 1009});
  const SparseVector touching = SparseVector::FromDims({9, 500, 1000});

  for (const SimdLevel level : SupportedLevels()) {
    SetSimdLevelForTest(level);
    for (const auto& [a, b] : std::vector<std::pair<VectorRef, VectorRef>>{
             {empty, empty},
             {empty, low},
             {low, empty},
             {low, high},   // ranges fully disjoint
             {high, low}}) {
      const PairDotResult r = PairDotCount(a, b);
      EXPECT_EQ(r.dot, 0.0) << SimdLevelName(level);
      EXPECT_EQ(r.matches, 0u) << SimdLevelName(level);
      EXPECT_EQ(PairOverlap(a, b), 0u) << SimdLevelName(level);
      EXPECT_EQ(PairDot(a, b), 0.0) << SimdLevelName(level);
    }
    // Ranges that merely *touch* must not be treated as disjoint.
    const PairDotResult t = PairDotCount(low, touching);
    EXPECT_EQ(t.matches, 1u) << SimdLevelName(level);
    EXPECT_EQ(t.dot, 1.0) << SimdLevelName(level);
  }
  ResetSimdLevelForTest();
}

TEST(PairEvalTest, BatchWithEmptyVectorsMatchesUnbatchedLoop) {
  // An arena holding empty vectors alongside real ones: pairs touching an
  // empty side must behave identically in the batch path (which
  // materializes refs and reorders) and the plain Similarity loop.
  CsrStorage storage;
  Rng rng(kSeed ^ 0xe);
  const SparseVector empty;
  for (int i = 0; i < 24; ++i) {
    if (i % 3 == 0) {
      storage.Append(empty);
    } else {
      storage.Append(RandomSortedVector(rng, 1 + rng.Below(12), 64));
    }
  }
  const DatasetView view(storage);
  std::vector<VectorId> firsts, seconds;
  for (VectorId i = 0; i < 24; ++i) {
    for (VectorId j = 0; j < 24; ++j) {
      firsts.push_back(i);
      seconds.push_back(j);
    }
  }
  for (const auto measure :
       {SimilarityMeasure::kCosine, SimilarityMeasure::kJaccard}) {
    const auto counts = RunAtEveryLevel([&] {
      return CountPairsAtOrAbove(measure, view, firsts.data(), seconds.data(),
                                 firsts.size(), 0.3, kPairPrefetchDistance);
    });
    uint64_t expected = 0;
    for (size_t p = 0; p < firsts.size(); ++p) {
      if (Similarity(measure, view[firsts[p]], view[seconds[p]]) >= 0.3) {
        ++expected;
      }
    }
    for (const uint64_t c : counts) {
      EXPECT_EQ(c, expected) << SimilarityMeasureName(measure);
    }
  }
}

// ---------------------------------------------------------------------------
// Randomized property grid: every kernel path bitwise-equal to the local
// linear-merge reference across skew (gallop engages at >= kGallopRatio),
// long-side length (the AVX2 <=16 / 17..32 / window rungs) and dim range
// (intersection density from near-total overlap to near-disjoint).

TEST(PairEvalTest, KernelGridMatchesLinearMergeReferenceBitwise) {
  // (short length, long length): chosen to land in every traversal path.
  const std::pair<size_t, size_t> kShapes[] = {
      {1, 1},   {2, 5},   {7, 14},  {13, 16}, {16, 16},  // AVX2 <=16 rung
      {9, 24},  {17, 32},                                // AVX2 17..32 rung
      {20, 40}, {33, 48}, {40, 64},                      // AVX2/SSE2 window
      {1, 12},  {2, 30},  {4, 64},  {3, 200},            // gallop (>=8x skew)
  };
  ASSERT_GE(kGallopRatio, 8u) << "gallop rows above assume ratio 8";

  uint64_t trial_seed = kSeed;
  for (const auto& [short_len, long_len] : kShapes) {
    for (const uint32_t range_factor : {2u, 4u, 16u}) {
      const auto range =
          static_cast<uint32_t>(std::max<size_t>(long_len * range_factor, 2));
      for (int trial = 0; trial < 4; ++trial) {
        Rng rng(++trial_seed);
        const SparseVector a = RandomSortedVector(rng, short_len, range);
        const SparseVector b = RandomSortedVector(rng, long_len, range);
        const PairDotResult want = ReferenceDotCount(a, b);

        // Both argument orders: the small/large swap must not change the
        // accumulation order (matches arrive by increasing dim either way).
        const auto results = RunAtEveryLevel([&] {
          const PairDotResult fwd = PairDotCount(a, b);
          const PairDotResult rev = PairDotCount(b, a);
          return std::pair<PairDotResult, PairDotResult>(fwd, rev);
        });
        for (size_t l = 0; l < results.size(); ++l) {
          const auto& [fwd, rev] = results[l];
          ASSERT_EQ(fwd.dot, want.dot)
              << short_len << "x" << long_len << " range " << range
              << " level " << l;
          ASSERT_EQ(fwd.matches, want.matches)
              << short_len << "x" << long_len << " range " << range
              << " level " << l;
          ASSERT_EQ(rev.dot, want.dot) << "swapped, level " << l;
          ASSERT_EQ(rev.matches, want.matches) << "swapped, level " << l;
        }
      }
    }
  }
}

TEST(PairEvalTest, DenseIdenticalVectorsMatchEveryLane) {
  // Every probe hits, across all lane positions of the small kernels: the
  // valid-lane masking must not drop lane 15 / 31 and dim id 0 must not
  // alias a masked-out zero lane (weights differ so a false lane-0 match
  // would change the sum).
  for (const size_t len : {1u, 8u, 15u, 16u, 17u, 24u, 31u, 32u, 33u, 48u}) {
    std::vector<Feature> fa, fb;
    for (size_t d = 0; d < len; ++d) {
      fa.push_back(Feature{static_cast<DimId>(d), 1.0f + d * 0.25f});
      fb.push_back(Feature{static_cast<DimId>(d), 2.0f - d * 0.03f});
    }
    const SparseVector a(std::move(fa));
    const SparseVector b(std::move(fb));
    const PairDotResult want = ReferenceDotCount(a, b);
    ASSERT_EQ(want.matches, len);
    const auto results = RunAtEveryLevel([&] { return PairDotCount(a, b); });
    for (size_t l = 0; l < results.size(); ++l) {
      ASSERT_EQ(results[l].dot, want.dot) << "len " << len << " level " << l;
      ASSERT_EQ(results[l].matches, len) << "len " << len << " level " << l;
    }
  }
}

// ---------------------------------------------------------------------------
// Batch semantics: hit mask bit-identical to the unbatched Similarity loop,
// keyed by original index; counts invariant under pair-list permutation.

TEST(PairEvalTest, BatchHitMaskMatchesUnbatchedSimilarityLoop) {
  const VectorDataset dataset = testing::SmallClusteredCorpus(300, 29);
  const DatasetView view(dataset);
  Rng pair_rng(kSeed ^ 0x5);
  for (const auto measure :
       {SimilarityMeasure::kCosine, SimilarityMeasure::kJaccard}) {
    for (const double tau : {0.1, 0.5, 0.9}) {
      // Odd count: exercises a partial batch alongside full ones.
      constexpr size_t kCount = 37;
      VectorId firsts[kCount], seconds[kCount];
      for (size_t i = 0; i < kCount; ++i) {
        firsts[i] = static_cast<VectorId>(pair_rng.Below(view.size()));
        seconds[i] = static_cast<VectorId>(pair_rng.Below(view.size()));
      }
      uint64_t expected_mask = 0;
      for (size_t i = 0; i < kCount; ++i) {
        if (Similarity(measure, view[firsts[i]], view[seconds[i]]) >= tau) {
          expected_mask |= uint64_t{1} << i;
        }
      }
      const auto masks = RunAtEveryLevel([&] {
        uint64_t mask = 0;
        const uint64_t hits =
            EvaluatePairBatch(measure, view, firsts, seconds, kCount, tau,
                              kPairPrefetchDistance, &mask);
        EXPECT_EQ(hits, static_cast<uint64_t>(__builtin_popcountll(mask)));
        return mask;
      });
      for (const uint64_t mask : masks) {
        ASSERT_EQ(mask, expected_mask)
            << SimilarityMeasureName(measure) << " tau " << tau;
      }
    }
  }
}

TEST(PairEvalTest, EmptyBatchIsANoOp) {
  const VectorDataset dataset = testing::SmallClusteredCorpus(16, 3);
  const DatasetView view(dataset);
  uint64_t mask = ~uint64_t{0};
  EXPECT_EQ(EvaluatePairBatch(SimilarityMeasure::kCosine, view, nullptr,
                              nullptr, 0, 0.5, kPairPrefetchDistance, &mask),
            0u);
  EXPECT_EQ(mask, 0u);
  EXPECT_EQ(CountPairsAtOrAbove(SimilarityMeasure::kCosine, view, nullptr,
                                nullptr, 0, 0.5, kPairPrefetchDistance),
            0u);
}

TEST(PairEvalTest, CountPairsIsReorderInvariant) {
  const VectorDataset dataset = testing::SmallClusteredCorpus(400, 31);
  const DatasetView view(dataset);
  Rng rng(kSeed ^ 0x7);
  // 300 pairs: four full batches plus a 44-pair tail.
  constexpr size_t kCount = 300;
  std::vector<VectorId> firsts(kCount), seconds(kCount);
  for (size_t i = 0; i < kCount; ++i) {
    firsts[i] = static_cast<VectorId>(rng.Below(view.size()));
    seconds[i] = static_cast<VectorId>(rng.Below(view.size()));
  }
  const uint64_t baseline =
      CountPairsAtOrAbove(SimilarityMeasure::kCosine, view, firsts.data(),
                          seconds.data(), kCount, 0.4, kPairPrefetchDistance);
  for (int round = 0; round < 3; ++round) {
    // Deterministic Fisher–Yates, pairs kept aligned.
    for (size_t i = kCount - 1; i > 0; --i) {
      const size_t j = rng.Below(i + 1);
      std::swap(firsts[i], firsts[j]);
      std::swap(seconds[i], seconds[j]);
    }
    const auto counts = RunAtEveryLevel([&] {
      return CountPairsAtOrAbove(SimilarityMeasure::kCosine, view,
                                 firsts.data(), seconds.data(), kCount, 0.4,
                                 kPairPrefetchDistance);
    });
    for (const uint64_t c : counts) EXPECT_EQ(c, baseline);
  }
}

// ---------------------------------------------------------------------------
// End-to-end: the estimators reach pair evaluation through SampleH/SampleL;
// the whole registry must be bit-identical across levels under the Jaccard
// measure too (the cosine leg lives in lsh/simd_dispatch_test — together
// they pin both batch-evaluator paths).

TEST(PairEvalTest, AllEstimatorsBitIdenticalAcrossLevelsUnderJaccard) {
  const VectorDataset dataset = testing::SmallClusteredCorpus(250, 19);
  const MinHashFamily family(kSeed ^ 0xb);
  for (const std::string& name : AllEstimatorNames()) {
    const auto results = RunAtEveryLevel([&] {
      const LshIndex index(family, dataset, 6, 2);
      EstimatorContext context;
      context.dataset = DatasetView(dataset);
      context.index = &index;
      context.measure = SimilarityMeasure::kJaccard;
      const auto estimator = CreateEstimator(name, context);
      std::vector<double> estimates;
      for (const double tau : {0.3, 0.6, 0.9}) {
        Rng rng(kSeed ^ static_cast<uint64_t>(tau * 512));
        estimates.push_back(estimator->Estimate(tau, rng).estimate);
      }
      return estimates;
    });
    for (size_t l = 1; l < results.size(); ++l) {
      ASSERT_EQ(results[l], results[0]) << name << " level " << l;
    }
  }
}

}  // namespace
}  // namespace vsj
