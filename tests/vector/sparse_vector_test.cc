#include "vsj/vector/sparse_vector.h"

#include <cmath>

#include <gtest/gtest.h>

namespace vsj {
namespace {

TEST(SparseVectorTest, EmptyVector) {
  SparseVector v;
  EXPECT_TRUE(v.empty());
  EXPECT_EQ(v.size(), 0u);
  EXPECT_DOUBLE_EQ(v.norm(), 0.0);
  EXPECT_EQ(v.dim_bound(), 0u);
}

TEST(SparseVectorTest, SortsFeaturesByDimension) {
  SparseVector v({{5, 1.0f}, {1, 2.0f}, {3, 3.0f}});
  ASSERT_EQ(v.size(), 3u);
  EXPECT_EQ(v[0].dim, 1u);
  EXPECT_EQ(v[1].dim, 3u);
  EXPECT_EQ(v[2].dim, 5u);
}

TEST(SparseVectorTest, CoalescesDuplicateDimensions) {
  SparseVector v({{2, 1.0f}, {2, 2.5f}, {7, 1.0f}});
  ASSERT_EQ(v.size(), 2u);
  EXPECT_EQ(v[0].dim, 2u);
  EXPECT_FLOAT_EQ(v[0].weight, 3.5f);
}

TEST(SparseVectorTest, DropsNonPositiveWeights) {
  SparseVector v({{1, 0.0f}, {2, -1.0f}, {3, 2.0f}});
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0].dim, 3u);
}

TEST(SparseVectorTest, DuplicatesCancellingToZeroAreDropped) {
  SparseVector v({{4, 1.0f}, {4, -1.0f}, {5, 1.0f}});
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0].dim, 5u);
}

TEST(SparseVectorTest, NormAndL1) {
  SparseVector v({{0, 3.0f}, {1, 4.0f}});
  EXPECT_DOUBLE_EQ(v.norm(), 5.0);
  EXPECT_DOUBLE_EQ(v.l1_norm(), 7.0);
}

TEST(SparseVectorTest, FromDimsBuildsBinaryVector) {
  SparseVector v = SparseVector::FromDims({9, 2, 5});
  ASSERT_EQ(v.size(), 3u);
  EXPECT_EQ(v[0].dim, 2u);
  EXPECT_FLOAT_EQ(v[0].weight, 1.0f);
  EXPECT_DOUBLE_EQ(v.norm(), std::sqrt(3.0));
  EXPECT_EQ(v.dim_bound(), 10u);
}

TEST(SparseVectorTest, DotDisjoint) {
  SparseVector a = SparseVector::FromDims({1, 2});
  SparseVector b = SparseVector::FromDims({3, 4});
  EXPECT_DOUBLE_EQ(a.Dot(b), 0.0);
}

TEST(SparseVectorTest, DotOverlapping) {
  SparseVector a({{1, 2.0f}, {3, 1.0f}, {5, 4.0f}});
  SparseVector b({{3, 3.0f}, {5, 0.5f}, {9, 7.0f}});
  EXPECT_DOUBLE_EQ(a.Dot(b), 1.0 * 3.0 + 4.0 * 0.5);
}

TEST(SparseVectorTest, DotIsSymmetric) {
  SparseVector a({{1, 2.0f}, {3, 1.0f}});
  SparseVector b({{1, 3.0f}, {2, 5.0f}, {3, 1.0f}});
  EXPECT_DOUBLE_EQ(a.Dot(b), b.Dot(a));
}

TEST(SparseVectorTest, DotWithSelfIsNormSquared) {
  SparseVector a({{2, 1.5f}, {7, 2.0f}});
  EXPECT_NEAR(a.Dot(a), a.norm() * a.norm(), 1e-12);
}

TEST(SparseVectorTest, OverlapSize) {
  SparseVector a = SparseVector::FromDims({1, 2, 3, 4});
  SparseVector b = SparseVector::FromDims({2, 4, 6});
  EXPECT_EQ(a.OverlapSize(b), 2u);
  EXPECT_EQ(b.OverlapSize(a), 2u);
  EXPECT_EQ(a.OverlapSize(a), 4u);
}

TEST(SparseVectorTest, EqualityComparesFeatures) {
  SparseVector a({{1, 1.0f}, {2, 2.0f}});
  SparseVector b({{2, 2.0f}, {1, 1.0f}});  // same after sorting
  SparseVector c({{1, 1.0f}});
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == c);
}

}  // namespace
}  // namespace vsj
