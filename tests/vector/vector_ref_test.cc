#include "vsj/vector/vector_ref.h"

#include <cstddef>
#include <vector>

#include <gtest/gtest.h>

#include "vsj/vector/sparse_vector.h"

namespace vsj {
namespace {

// Reference implementation: the plain linear merge the library used before
// the galloping kernel. The kernel must match it exactly (same doubles,
// not just approximately) at every skew ratio.
double LinearDot(VectorRef a, VectorRef b) {
  double sum = 0.0;
  size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a.dim(i) < b.dim(j)) {
      ++i;
    } else if (a.dim(i) > b.dim(j)) {
      ++j;
    } else {
      sum += static_cast<double>(a.weight(i)) * b.weight(j);
      ++i;
      ++j;
    }
  }
  return sum;
}

size_t LinearOverlap(VectorRef a, VectorRef b) {
  size_t count = 0;
  size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a.dim(i) < b.dim(j)) {
      ++i;
    } else if (a.dim(i) > b.dim(j)) {
      ++j;
    } else {
      ++count;
      ++i;
      ++j;
    }
  }
  return count;
}

// A vector of `size` features at dims {offset, offset + stride, ...} with
// deterministic non-uniform weights (catches dim/weight misalignment).
SparseVector MakeVector(size_t size, DimId offset, DimId stride) {
  std::vector<Feature> features;
  features.reserve(size);
  for (size_t i = 0; i < size; ++i) {
    features.push_back(Feature{static_cast<DimId>(offset + i * stride),
                               0.25f + 0.5f * static_cast<float>(i % 7)});
  }
  return SparseVector(std::move(features));
}

class VectorRefSkewTest : public ::testing::TestWithParam<size_t> {};

// The acceptance bar of the galloping merge: exact-equality results at
// skew ratios 1, 8 (the switch point) and 64.
TEST_P(VectorRefSkewTest, DotMatchesLinearMergeExactly) {
  const size_t ratio = GetParam();
  const size_t small_size = 48;
  // Overlapping dims: the small vector hits every ratio-th dim of the big
  // one; also shift by 1 to exercise the no-overlap path.
  const SparseVector small = MakeVector(small_size, 0, 4 * ratio);
  const SparseVector large = MakeVector(small_size * ratio, 0, 4);
  const SparseVector shifted = MakeVector(small_size * ratio, 1, 4);

  EXPECT_EQ(small.ref().Dot(large), LinearDot(small, large));
  EXPECT_EQ(large.ref().Dot(small), LinearDot(small, large));
  EXPECT_EQ(small.ref().Dot(shifted), LinearDot(small, shifted));

  EXPECT_EQ(small.ref().OverlapSize(large), LinearOverlap(small, large));
  EXPECT_EQ(large.ref().OverlapSize(small), LinearOverlap(small, large));
  EXPECT_EQ(small.ref().OverlapSize(shifted), LinearOverlap(small, shifted));
}

INSTANTIATE_TEST_SUITE_P(SkewRatios, VectorRefSkewTest,
                         ::testing::Values(1, 8, 64));

TEST(VectorRefTest, DotHandlesEmptySides) {
  const SparseVector empty;
  const SparseVector v = MakeVector(20, 0, 3);
  EXPECT_EQ(empty.ref().Dot(v), 0.0);
  EXPECT_EQ(v.ref().Dot(empty), 0.0);
  EXPECT_EQ(empty.ref().Dot(empty), 0.0);
}

TEST(VectorRefTest, GallopPastEndTerminates) {
  // Small vector's dims all beyond the large vector's range: the gallop
  // runs off the end on the first probe.
  const SparseVector small = MakeVector(4, 100000, 1);
  const SparseVector large = MakeVector(64, 0, 2);
  EXPECT_EQ(small.ref().Dot(large), 0.0);
  EXPECT_EQ(small.ref().OverlapSize(large), 0u);
}

TEST(VectorRefTest, ViewMatchesOwner) {
  const SparseVector v({{3, 1.5f}, {9, 2.0f}, {20, 0.5f}});
  const VectorRef r = v.ref();
  ASSERT_EQ(r.size(), v.size());
  EXPECT_EQ(r.norm(), v.norm());
  EXPECT_EQ(r.l1_norm(), v.l1_norm());
  EXPECT_EQ(r.dim_bound(), v.dim_bound());
  for (size_t i = 0; i < v.size(); ++i) {
    EXPECT_EQ(r.dim(i), v[i].dim);
    EXPECT_EQ(r.weight(i), v[i].weight);
  }
}

TEST(VectorRefTest, IterationYieldsFeaturesInOrder) {
  const SparseVector v({{1, 1.0f}, {4, 2.0f}, {6, 3.0f}});
  std::vector<Feature> seen;
  for (const Feature f : v.ref()) seen.push_back(f);
  ASSERT_EQ(seen.size(), 3u);
  EXPECT_EQ(seen[1], (Feature{4, 2.0f}));
}

TEST(VectorRefTest, EqualityComparesPayload) {
  const SparseVector a({{1, 1.0f}, {2, 2.0f}});
  const SparseVector b({{1, 1.0f}, {2, 2.0f}});
  const SparseVector c({{1, 1.0f}, {2, 2.5f}});
  EXPECT_TRUE(a.ref() == b.ref());
  EXPECT_FALSE(a.ref() == c.ref());
}

TEST(VectorRefTest, RoundTripThroughSparseVectorPreservesNorms) {
  const SparseVector v({{2, 0.3f}, {11, 1.7f}});
  const SparseVector copy(v.ref());
  EXPECT_EQ(copy, v);
  EXPECT_EQ(copy.norm(), v.norm());
  EXPECT_EQ(copy.l1_norm(), v.l1_norm());
}

}  // namespace
}  // namespace vsj
