#include "vsj/core/lattice_counting.h"

#include <gtest/gtest.h>

#include "test_util.h"
#include "vsj/eval/ground_truth.h"

namespace vsj {
namespace {

TEST(LatticeCountingTest, MomentsAreDecreasing) {
  // M_t = Σ p^t with p ∈ [0, 1] is non-increasing in t.
  auto setup = testing::MakeJaccardSetup(400, 6);
  LatticeCountingEstimator lc(setup.dataset, *setup.family,
                              {.signature_length = 16});
  const auto& moments = lc.moments();
  ASSERT_GE(moments.size(), 2u);
  for (size_t t = 1; t < moments.size(); ++t) {
    EXPECT_LE(moments[t], moments[t - 1] + 1e-9);
  }
}

TEST(LatticeCountingTest, FirstMomentMatchesExpectation) {
  // E[M_1] = Σ_pairs jaccard(u, v) for MinHash; compare against the exact
  // sum on a small corpus.
  VectorDataset dataset = testing::SmallClusteredCorpus(250, 3);
  double exact = 0.0;
  for (VectorId i = 0; i < dataset.size(); ++i) {
    for (VectorId j = i + 1; j < dataset.size(); ++j) {
      exact += JaccardSimilarity(dataset[i], dataset[j]);
    }
  }
  MinHashFamily family(4);
  LatticeCountingEstimator lc(dataset, family, {.signature_length = 48});
  EXPECT_NEAR(lc.moments()[0], exact, exact * 0.25 + 10.0);
}

TEST(LatticeCountingTest, EstimateMonotoneInTau) {
  auto setup = testing::MakeJaccardSetup(300, 6);
  LatticeCountingEstimator lc(setup.dataset, *setup.family, {});
  Rng rng(1);
  double prev = lc.Estimate(0.05, rng).estimate;
  for (double tau = 0.1; tau <= 1.0; tau += 0.1) {
    const double est = lc.Estimate(tau, rng).estimate;
    EXPECT_LE(est, prev + 1e-6);
    prev = est;
  }
}

TEST(LatticeCountingTest, TauZeroReturnsM) {
  auto setup = testing::MakeJaccardSetup(200, 6);
  LatticeCountingEstimator lc(setup.dataset, *setup.family, {});
  Rng rng(2);
  EXPECT_DOUBLE_EQ(lc.Estimate(0.0, rng).estimate,
                   static_cast<double>(setup.dataset.NumPairs()));
}

TEST(LatticeCountingTest, EstimateWithinBoundsAndUnguaranteed) {
  auto setup = testing::MakeCosineSetup(300, 8);
  LatticeCountingEstimator lc(setup.dataset, *setup.family, {});
  Rng rng(3);
  for (double tau : {0.1, 0.5, 0.9}) {
    const EstimationResult r = lc.Estimate(tau, rng);
    EXPECT_GE(r.estimate, 0.0);
    EXPECT_LE(r.estimate, static_cast<double>(setup.dataset.NumPairs()));
    EXPECT_FALSE(r.guaranteed);
  }
}

TEST(LatticeCountingTest, OrderOfMagnitudeWithMinHashAtModerateTau) {
  // With an identity collision curve the power-law fit has full [0,1]
  // support; expect the estimate within ~an order of magnitude at τ = 0.3.
  auto setup = testing::MakeJaccardSetup(800, 6, 1, 11);
  GroundTruth truth(setup.dataset, SimilarityMeasure::kJaccard, {0.3});
  const double true_j = static_cast<double>(truth.JoinSize(0.3));
  ASSERT_GT(true_j, 0.0);
  LatticeCountingEstimator lc(setup.dataset, *setup.family,
                              {.signature_length = 32});
  Rng rng(4);
  const double est = lc.Estimate(0.3, rng).estimate;
  EXPECT_GT(est, true_j / 20.0);
  EXPECT_LT(est, true_j * 20.0);
}

TEST(LatticeCountingTest, MinSupportReducesMoments) {
  auto setup = testing::MakeJaccardSetup(400, 6, 1, 13);
  LatticeCountingEstimator all(setup.dataset, *setup.family,
                               {.signature_length = 16, .min_support = 2});
  LatticeCountingEstimator filtered(
      setup.dataset, *setup.family,
      {.signature_length = 16, .min_support = 8});
  EXPECT_LE(filtered.moments()[0], all.moments()[0]);
}

TEST(LatticeCountingDeathTest, RequiresTwoMoments) {
  auto setup = testing::MakeJaccardSetup(100, 6);
  EXPECT_DEATH(LatticeCountingEstimator(setup.dataset, *setup.family,
                                        {.num_moments = 1}),
               "CHECK");
}

}  // namespace
}  // namespace vsj
