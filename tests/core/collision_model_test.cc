#include "vsj/core/collision_model.h"

#include <cmath>

#include <gtest/gtest.h>

#include "vsj/lsh/minhash.h"
#include "vsj/lsh/simhash.h"

namespace vsj {
namespace {

TEST(CollisionModelTest, MinHashIsIdentityCurve) {
  MinHashFamily family(1);
  CollisionModel model(family, 5);
  EXPECT_TRUE(model.IsIdentityCurve());
}

TEST(CollisionModelTest, SimHashIsNotIdentityCurve) {
  SimHashFamily family(1);
  CollisionModel model(family, 5);
  EXPECT_FALSE(model.IsIdentityCurve());
}

TEST(CollisionModelTest, BandProbabilityIsPthPower) {
  MinHashFamily family(2);
  CollisionModel model(family, 3);
  EXPECT_NEAR(model.BandProbability(0.5), 0.125, 1e-12);
}

TEST(CollisionModelTest, IdentityIntegralsHaveClosedForm) {
  MinHashFamily family(3);
  const uint32_t k = 4;
  CollisionModel model(family, k);
  // ∫_0^τ s^k ds = τ^{k+1}/(k+1).
  for (double tau : {0.2, 0.5, 0.8}) {
    EXPECT_NEAR(model.IntegralBelow(tau), std::pow(tau, k + 1) / (k + 1),
                1e-9);
    EXPECT_NEAR(model.IntegralAbove(tau),
                (1.0 - std::pow(tau, k + 1)) / (k + 1), 1e-9);
  }
}

TEST(CollisionModelTest, ConditionalsMatchPaperEquations89) {
  // P(H|T) = Σ_{i=0}^{k} τ^i / (k+1); P(H|F) = τ^k / (k+1)  [Eqs. 8, 9]
  MinHashFamily family(4);
  const uint32_t k = 6;
  CollisionModel model(family, k);
  for (double tau : {0.1, 0.4, 0.7, 0.95}) {
    double geo = 0.0;
    for (uint32_t i = 0; i <= k; ++i) geo += std::pow(tau, i);
    EXPECT_NEAR(model.ConditionalHGivenTrue(tau), geo / (k + 1), 1e-9);
    EXPECT_NEAR(model.ConditionalHGivenFalse(tau),
                std::pow(tau, k) / (k + 1), 1e-9);
  }
}

TEST(CollisionModelTest, LimitsAtExtremes) {
  MinHashFamily family(5);
  CollisionModel model(family, 3);
  EXPECT_NEAR(model.ConditionalHGivenTrue(1.0), 1.0, 1e-9);   // f(1)
  EXPECT_NEAR(model.ConditionalHGivenFalse(0.0), 0.0, 1e-9);  // f(0)
  EXPECT_DOUBLE_EQ(model.IntegralBelow(0.0), 0.0);
  EXPECT_DOUBLE_EQ(model.IntegralAbove(1.0), 0.0);
}

TEST(CollisionModelTest, IntegralsPartitionTotal) {
  SimHashFamily family(6);
  CollisionModel model(family, 8);
  const double total = model.IntegralBelow(1.0);
  for (double tau : {0.2, 0.5, 0.8}) {
    EXPECT_NEAR(model.IntegralBelow(tau) + model.IntegralAbove(tau), total,
                1e-12);
  }
}

TEST(CollisionModelTest, SimHashConditionalsAreMonotoneInTau) {
  SimHashFamily family(7);
  CollisionModel model(family, 10);
  double prev_hf = 0.0;
  for (double tau = 0.05; tau <= 1.0; tau += 0.05) {
    const double hf = model.ConditionalHGivenFalse(tau);
    EXPECT_GE(hf, prev_hf - 1e-12);
    prev_hf = hf;
    // P(H|T) exceeds P(H|F): same-bucket mass concentrates above τ.
    EXPECT_GE(model.ConditionalHGivenTrue(tau), hf);
  }
}

}  // namespace
}  // namespace vsj
