#include "vsj/core/lsh_ss_estimator.h"

#include <gtest/gtest.h>

#include "test_util.h"
#include "vsj/eval/experiment.h"
#include "vsj/eval/ground_truth.h"

namespace vsj {
namespace {

TEST(LshSsEstimatorTest, DefaultsFollowPaper) {
  auto setup = testing::MakeCosineSetup(1024, 10);
  LshSsEstimator est(setup.dataset, setup.index->table(0),
                     SimilarityMeasure::kCosine);
  EXPECT_EQ(est.sample_size_h(), 1024u);
  EXPECT_EQ(est.sample_size_l(), 1024u);
  EXPECT_EQ(est.delta(), 10u);  // log2(1024)
  EXPECT_EQ(est.name(), "LSH-SS");
}

TEST(LshSsEstimatorTest, DampenedVariantIsNamedD) {
  auto setup = testing::MakeCosineSetup(256, 10);
  LshSsEstimator est(
      setup.dataset, setup.index->table(0), SimilarityMeasure::kCosine,
      {.dampening = DampeningMode::kAdaptiveNlOverDelta});
  EXPECT_EQ(est.name(), "LSH-SS(D)");
}

TEST(LshSsEstimatorTest, TauZeroReturnsM) {
  auto setup = testing::MakeCosineSetup(300, 10);
  LshSsEstimator est(setup.dataset, setup.index->table(0),
                     SimilarityMeasure::kCosine);
  Rng rng(1);
  EXPECT_DOUBLE_EQ(est.Estimate(0.0, rng).estimate,
                   static_cast<double>(setup.dataset.NumPairs()));
}

TEST(LshSsEstimatorTest, StratumEstimatesSumToTotal) {
  auto setup = testing::MakeCosineSetup(500, 10);
  LshSsEstimator est(setup.dataset, setup.index->table(0),
                     SimilarityMeasure::kCosine);
  Rng rng(2);
  const EstimationResult r = est.Estimate(0.5, rng);
  EXPECT_NEAR(r.estimate, r.stratum_h_estimate + r.stratum_l_estimate,
              1e-9);
}

TEST(LshSsEstimatorTest, AccurateAcrossThresholdsWithAmpleBudget) {
  // The headline property: decent accuracy at low AND high thresholds, when
  // the sample budget puts SampleL in the reliable (Theorem 3) regime. At
  // default budgets the small-n grey area underestimates conservatively —
  // exactly the paper's Figure 2(b) behavior — which the safe-lower-bound
  // tests below cover.
  auto setup = testing::MakeCosineSetup(1500, 10, 1, 21);
  GroundTruth truth(setup.dataset, SimilarityMeasure::kCosine,
                    {0.2, 0.5, 0.8});
  LshSsEstimator est(setup.dataset, setup.index->table(0),
                     SimilarityMeasure::kCosine,
                     {.sample_size_h = 4000,
                      .sample_size_l = 100000,
                      .delta = 5});
  for (double tau : {0.2, 0.5, 0.8}) {
    const double true_j = static_cast<double>(truth.JoinSize(tau));
    ASSERT_GT(true_j, 0.0) << "tau = " << tau;
    const ErrorStats stats = RunAndScore(est, tau, 30, 5, true_j);
    EXPECT_GT(stats.mean_estimate, true_j * 0.3) << "tau = " << tau;
    EXPECT_LT(stats.mean_estimate, true_j * 3.0) << "tau = " << tau;
  }
}

TEST(LshSsEstimatorTest, GreyAreaUnderestimatesConservatively) {
  // With the default m_L = n budget at small n, mid-τ thresholds fall into
  // the paper's "grey area": the safe lower bound underestimates rather
  // than fluctuating upward (§5.1.2).
  auto setup = testing::MakeCosineSetup(1500, 10, 1, 21);
  GroundTruth truth(setup.dataset, SimilarityMeasure::kCosine, {0.5});
  const double true_j = static_cast<double>(truth.JoinSize(0.5));
  ASSERT_GT(true_j, 0.0);
  LshSsEstimator est(setup.dataset, setup.index->table(0),
                     SimilarityMeasure::kCosine);
  const ErrorStats stats = RunAndScore(est, 0.5, 30, 5, true_j);
  EXPECT_LT(stats.mean_estimate, true_j * 3.0);
  EXPECT_LE(stats.num_big_overestimates, 1u);
}

TEST(LshSsEstimatorTest, RarelyOverestimatesBadly) {
  // Theorem 1's practical upshot (§6.2): LSH-SS hardly overestimates.
  auto setup = testing::MakeCosineSetup(1000, 10, 1, 23);
  GroundTruth truth(setup.dataset, SimilarityMeasure::kCosine, {0.9});
  const double true_j = static_cast<double>(truth.JoinSize(0.9));
  if (true_j == 0.0) GTEST_SKIP() << "no true pairs at 0.9 for this seed";
  LshSsEstimator est(setup.dataset, setup.index->table(0),
                     SimilarityMeasure::kCosine);
  const TrialSeries series = RunTrials(est, 0.9, 40, 9);
  int big_over = 0;
  for (double e : series.estimates) big_over += e > 10.0 * true_j ? 1 : 0;
  EXPECT_LE(big_over, 2);
}

TEST(LshSsEstimatorTest, SafeLowerBoundNeverScalesUpUnreliably) {
  // Force the safe-lower-bound path with a tiny m_L: Ĵ_L ≤ δ.
  auto setup = testing::MakeCosineSetup(600, 10, 1, 25);
  LshSsEstimator est(setup.dataset, setup.index->table(0),
                     SimilarityMeasure::kCosine,
                     {.sample_size_l = 20, .delta = 10});
  Rng rng(3);
  const EstimationResult r = est.Estimate(0.95, rng);
  if (!r.guaranteed) {
    EXPECT_LE(r.stratum_l_estimate, 10.0);
  }
}

TEST(LshSsEstimatorTest, DampenedScaleUpBetweenSafeAndFull) {
  auto setup = testing::MakeCosineSetup(600, 10, 1, 27);
  const LshTable& table = setup.index->table(0);
  LshSsOptions base{.sample_size_l = 50, .delta = 30};

  LshSsOptions safe = base;
  safe.dampening = DampeningMode::kSafeLowerBound;
  LshSsOptions damp = base;
  damp.dampening = DampeningMode::kFixedFactor;
  damp.dampening_factor = 0.5;

  LshSsEstimator est_safe(setup.dataset, table, SimilarityMeasure::kCosine,
                          safe);
  LshSsEstimator est_damp(setup.dataset, table, SimilarityMeasure::kCosine,
                          damp);
  // Same RNG seed → same samples → comparable stratum L estimates.
  Rng rng_a(7), rng_b(7);
  const EstimationResult r_safe = est_safe.Estimate(0.6, rng_a);
  const EstimationResult r_damp = est_damp.Estimate(0.6, rng_b);
  if (!r_safe.guaranteed && r_safe.stratum_l_estimate > 0.0) {
    EXPECT_GE(r_damp.stratum_l_estimate, r_safe.stratum_l_estimate);
    // c_s = 0.5 halves the full scale-up N_L/m_L.
    const double full = r_safe.stratum_l_estimate / 50.0 *
                        static_cast<double>(table.NumCrossBucketPairs());
    EXPECT_NEAR(r_damp.stratum_l_estimate, 0.5 * full, full * 1e-9);
  }
}

TEST(LshSsEstimatorTest, EstimateClampedToM) {
  auto setup = testing::MakeCosineSetup(300, 10);
  LshSsEstimator est(setup.dataset, setup.index->table(0),
                     SimilarityMeasure::kCosine);
  for (double tau : {0.1, 0.5, 0.9}) {
    Rng rng(static_cast<uint64_t>(tau * 10));
    const EstimationResult r = est.Estimate(tau, rng);
    EXPECT_LE(r.estimate, static_cast<double>(setup.dataset.NumPairs()));
    EXPECT_GE(r.estimate, 0.0);
  }
}

TEST(LshSsEstimatorDeathTest, RejectsBadDampeningFactor) {
  auto setup = testing::MakeCosineSetup(100, 6);
  EXPECT_DEATH(
      LshSsEstimator(setup.dataset, setup.index->table(0),
                     SimilarityMeasure::kCosine,
                     {.dampening = DampeningMode::kFixedFactor,
                      .dampening_factor = 1.5}),
      "c_s");
}

// Property sweep: estimates stay within [0, M] for many (seed, τ) combos.
class LshSsPropertyTest
    : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(LshSsPropertyTest, EstimateAlwaysFeasible) {
  const auto [seed, tau] = GetParam();
  auto setup = testing::MakeCosineSetup(400, 10, 1, seed);
  LshSsEstimator est(setup.dataset, setup.index->table(0),
                     SimilarityMeasure::kCosine);
  Rng rng(seed * 7919);
  const EstimationResult r = est.Estimate(tau, rng);
  EXPECT_GE(r.estimate, 0.0);
  EXPECT_LE(r.estimate, static_cast<double>(setup.dataset.NumPairs()));
  EXPECT_GT(r.pairs_evaluated, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndThresholds, LshSsPropertyTest,
    ::testing::Combine(::testing::Values(1, 2, 3, 4),
                       ::testing::Values(0.1, 0.4, 0.7, 0.95)));

}  // namespace
}  // namespace vsj
