#include "vsj/core/optimal_k.h"

#include <gtest/gtest.h>

#include "test_util.h"
#include "vsj/lsh/lsh_table.h"

namespace vsj {
namespace {

TEST(PrecisionFloorTest, TightensWithEpsilonAndProbability) {
  const size_t n = 100000;
  // Smaller ε → larger required α.
  EXPECT_GT(PrecisionFloor(0.1, 0.9, n), PrecisionFloor(0.5, 0.9, n));
  // Higher probability target → larger required α.
  EXPECT_GT(PrecisionFloor(0.2, 0.99, n), PrecisionFloor(0.2, 0.9, n));
  // Larger n → smaller required α (more samples).
  EXPECT_LT(PrecisionFloor(0.2, 0.9, 10 * n), PrecisionFloor(0.2, 0.9, n));
  // Always in (0, 1].
  EXPECT_LE(PrecisionFloor(0.01, 0.999, 100), 1.0);
}

TEST(OptimalKTest, AlphaIncreasesWithK) {
  auto setup = testing::MakeCosineSetup(600, 6, 1, 17);
  Rng rng(1);
  OptimalKOptions options;
  options.min_k = 2;
  options.max_k = 24;
  options.step = 4;
  // rho = 2 disables early stop (no alpha can reach it) → probe all.
  const OptimalKResult result =
      FindOptimalK(setup.dataset, *setup.family, 0.7, 2.0, rng, options);
  EXPECT_EQ(result.best_k, 0u);
  ASSERT_GE(result.probed.size(), 3u);
  // α trends upward in k (allow small sampling noise on neighbors).
  EXPECT_GT(result.probed.back().alpha + 0.05,
            result.probed.front().alpha);
}

TEST(OptimalKTest, FindsMinimalQualifyingK) {
  auto setup = testing::MakeCosineSetup(600, 6, 1, 19);
  Rng rng(2);
  OptimalKOptions options;
  options.min_k = 2;
  options.max_k = 30;
  options.step = 2;
  const double rho = 0.01;
  const OptimalKResult result =
      FindOptimalK(setup.dataset, *setup.family, 0.8, rho, rng, options);
  if (result.best_k != 0) {
    // The returned k qualifies and is the last probed configuration.
    EXPECT_GE(result.probed.back().alpha, rho);
    EXPECT_EQ(result.probed.back().k, result.best_k);
    // Every earlier probed k failed the floor.
    for (size_t i = 0; i + 1 < result.probed.size(); ++i) {
      EXPECT_LT(result.probed[i].alpha, rho);
    }
  }
}

TEST(OptimalKTest, ProbedCandidatesCarryTableSizes) {
  auto setup = testing::MakeCosineSetup(300, 6, 1, 21);
  Rng rng(3);
  OptimalKOptions options;
  options.min_k = 4;
  options.max_k = 8;
  options.step = 4;
  const OptimalKResult result =
      FindOptimalK(setup.dataset, *setup.family, 0.5, 2.0, rng, options);
  for (const KCandidate& candidate : result.probed) {
    LshTable table(*setup.family, setup.dataset, candidate.k);
    EXPECT_EQ(candidate.same_bucket_pairs, table.NumSameBucketPairs());
  }
}

TEST(OptimalKDeathTest, ValidatesOptions) {
  auto setup = testing::MakeCosineSetup(100, 4);
  Rng rng(4);
  OptimalKOptions bad;
  bad.min_k = 10;
  bad.max_k = 5;
  EXPECT_DEATH(
      FindOptimalK(setup.dataset, *setup.family, 0.5, 0.1, rng, bad),
      "CHECK");
}

}  // namespace
}  // namespace vsj
