#include "vsj/core/adaptive_sampling.h"

#include <gtest/gtest.h>

#include "test_util.h"
#include "vsj/eval/experiment.h"
#include "vsj/join/brute_force_join.h"

namespace vsj {
namespace {

TEST(RunAdaptiveSamplingTest, StopsAtAnswerThreshold) {
  int calls = 0;
  const AdaptiveSamplingOutcome out =
      RunAdaptiveSampling(3, 1000, [&]() {
        ++calls;
        return true;  // every sample is a hit
      });
  EXPECT_TRUE(out.reached_answer_threshold);
  EXPECT_EQ(out.hits, 3u);
  EXPECT_EQ(out.samples, 3u);
  EXPECT_EQ(calls, 3);
}

TEST(RunAdaptiveSamplingTest, StopsAtSampleBudget) {
  const AdaptiveSamplingOutcome out =
      RunAdaptiveSampling(5, 50, []() { return false; });
  EXPECT_FALSE(out.reached_answer_threshold);
  EXPECT_EQ(out.hits, 0u);
  EXPECT_EQ(out.samples, 50u);
}

TEST(RunAdaptiveSamplingTest, HitsNeverExceedDelta) {
  int i = 0;
  const AdaptiveSamplingOutcome out =
      RunAdaptiveSampling(4, 1000, [&]() { return ++i % 2 == 0; });
  EXPECT_EQ(out.hits, 4u);
  EXPECT_EQ(out.samples, 8u);
}

TEST(AdaptiveSamplingEstimatorTest, ReliableAtLowThreshold) {
  VectorDataset dataset = testing::SmallClusteredCorpus(400, 3);
  const double true_j = static_cast<double>(
      BruteForceJoinSize(dataset, SimilarityMeasure::kCosine, 0.1));
  ASSERT_GT(true_j, 0.0);
  AdaptiveSamplingEstimator est(dataset, SimilarityMeasure::kCosine,
                                {.delta = 50, .max_samples = 100000});
  const ErrorStats stats = RunAndScore(est, 0.1, 20, 11, true_j);
  EXPECT_NEAR(stats.mean_estimate, true_j, true_j * 0.4);
}

TEST(AdaptiveSamplingEstimatorTest, FlagsUnreliableAtHighThreshold) {
  VectorDataset dataset = testing::SmallClusteredCorpus(400, 5);
  AdaptiveSamplingEstimator est(dataset, SimilarityMeasure::kCosine,
                                {.delta = 64, .max_samples = 200});
  Rng rng(1);
  const EstimationResult r = est.Estimate(0.95, rng);
  EXPECT_FALSE(r.guaranteed);
  EXPECT_LE(r.pairs_evaluated, 200u);
}

TEST(AdaptiveSamplingEstimatorTest, DefaultsDeriveFromN) {
  VectorDataset dataset = testing::SmallClusteredCorpus(1024, 7);
  AdaptiveSamplingEstimator est(dataset, SimilarityMeasure::kCosine);
  Rng rng(2);
  const EstimationResult r = est.Estimate(0.99, rng);
  // max_samples defaults to n = 1024.
  EXPECT_LE(r.pairs_evaluated, 1024u);
}

}  // namespace
}  // namespace vsj
