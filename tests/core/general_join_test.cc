#include "vsj/core/general_join.h"

#include <gtest/gtest.h>

#include "test_util.h"
#include "vsj/eval/experiment.h"
#include "vsj/join/brute_force_join.h"

namespace vsj {
namespace {

struct GeneralSetup {
  VectorDataset left;
  VectorDataset right;
  std::unique_ptr<SimHashFamily> family;
  std::unique_ptr<LshTable> left_table;
  std::unique_ptr<LshTable> right_table;
};

GeneralSetup MakeGeneralSetup(size_t n_left, size_t n_right, uint32_t k,
                              uint64_t seed) {
  GeneralSetup setup;
  setup.left = testing::SmallClusteredCorpus(n_left, seed);
  // Overlapping distribution: same generator, different seed, so some
  // cross-collection near-duplicates exist only by chance; add shared docs
  // by reusing the same seed for a portion.
  setup.right = testing::SmallClusteredCorpus(n_right, seed);
  setup.family = std::make_unique<SimHashFamily>(seed ^ 0x777);
  setup.left_table =
      std::make_unique<LshTable>(*setup.family, setup.left, k);
  setup.right_table =
      std::make_unique<LshTable>(*setup.family, setup.right, k);
  return setup;
}

uint64_t ExactSameKeyPairs(const GeneralSetup& setup) {
  uint64_t count = 0;
  for (VectorId u = 0; u < setup.left.size(); ++u) {
    for (VectorId v = 0; v < setup.right.size(); ++v) {
      const uint64_t ku =
          setup.left_table->BucketKey(setup.left_table->BucketOf(u));
      const uint64_t kv =
          setup.right_table->BucketKey(setup.right_table->BucketOf(v));
      count += ku == kv ? 1 : 0;
    }
  }
  return count;
}

TEST(GeneralLshSsTest, SameBucketPairCountMatchesBruteForce) {
  GeneralSetup setup = MakeGeneralSetup(120, 150, 8, 1);
  GeneralLshSsEstimator est(setup.left, setup.right, *setup.left_table,
                            *setup.right_table, SimilarityMeasure::kCosine);
  EXPECT_EQ(est.NumSameBucketPairs(), ExactSameKeyPairs(setup));
  EXPECT_EQ(est.NumTotalPairs(), 120u * 150u);
}

TEST(GeneralLshSsTest, TauZeroReturnsTotalPairs) {
  GeneralSetup setup = MakeGeneralSetup(80, 90, 8, 2);
  GeneralLshSsEstimator est(setup.left, setup.right, *setup.left_table,
                            *setup.right_table, SimilarityMeasure::kCosine);
  Rng rng(1);
  EXPECT_DOUBLE_EQ(est.Estimate(0.0, rng).estimate, 80.0 * 90.0);
}

TEST(GeneralLshSsTest, AccurateAtModerateThreshold) {
  GeneralSetup setup = MakeGeneralSetup(600, 600, 10, 3);
  const double true_j = static_cast<double>(BruteForceGeneralJoinSize(
      setup.left, setup.right, SimilarityMeasure::kCosine, 0.5));
  ASSERT_GT(true_j, 0.0);
  GeneralLshSsEstimator est(setup.left, setup.right, *setup.left_table,
                            *setup.right_table, SimilarityMeasure::kCosine);
  const ErrorStats stats = RunAndScore(est, 0.5, 25, 11, true_j);
  EXPECT_GT(stats.mean_estimate, true_j * 0.25);
  EXPECT_LT(stats.mean_estimate, true_j * 4.0);
}

TEST(GeneralLshSsTest, EstimateWithinBounds) {
  GeneralSetup setup = MakeGeneralSetup(100, 200, 8, 4);
  GeneralLshSsEstimator est(setup.left, setup.right, *setup.left_table,
                            *setup.right_table, SimilarityMeasure::kCosine);
  for (double tau : {0.1, 0.5, 0.9}) {
    Rng rng(static_cast<uint64_t>(tau * 77) + 1);
    const EstimationResult r = est.Estimate(tau, rng);
    EXPECT_GE(r.estimate, 0.0);
    EXPECT_LE(r.estimate, 100.0 * 200.0);
  }
}

TEST(GeneralRandomPairSamplingTest, UnbiasedAtLowThreshold) {
  GeneralSetup setup = MakeGeneralSetup(400, 400, 8, 5);
  const double true_j = static_cast<double>(BruteForceGeneralJoinSize(
      setup.left, setup.right, SimilarityMeasure::kCosine, 0.1));
  ASSERT_GT(true_j, 0.0);
  GeneralRandomPairSampling rs(setup.left, setup.right,
                               SimilarityMeasure::kCosine, 30000);
  const ErrorStats stats = RunAndScore(rs, 0.1, 20, 13, true_j);
  EXPECT_NEAR(stats.mean_estimate, true_j, true_j * 0.3);
}

TEST(GeneralLshSsDeathTest, TablesMustShareK) {
  GeneralSetup setup = MakeGeneralSetup(50, 50, 6, 6);
  LshTable other_k(*setup.family, setup.right, 8);
  EXPECT_DEATH(
      GeneralLshSsEstimator(setup.left, setup.right, *setup.left_table,
                            other_k, SimilarityMeasure::kCosine),
      "CHECK");
}

}  // namespace
}  // namespace vsj
