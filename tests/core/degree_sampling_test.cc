#include "vsj/core/degree_sampling.h"

#include <gtest/gtest.h>

#include "test_util.h"
#include "vsj/eval/experiment.h"
#include "vsj/join/brute_force_join.h"

namespace vsj {
namespace {

TEST(DegreeSamplingTest, DefaultBudgetsFollowSqrtNLogN) {
  VectorDataset dataset = testing::SmallClusteredCorpus(1024, 1);
  DegreeSamplingEstimator est(dataset, SimilarityMeasure::kCosine);
  // √(1024 · 10) ≈ 102.
  EXPECT_NEAR(static_cast<double>(est.num_vertices()), 102.0, 2.0);
  EXPECT_EQ(est.refined_probes(), 4 * est.coarse_probes());
}

TEST(DegreeSamplingTest, TauZeroReturnsM) {
  VectorDataset dataset = testing::SmallClusteredCorpus(200, 2);
  DegreeSamplingEstimator est(dataset, SimilarityMeasure::kCosine);
  Rng rng(1);
  EXPECT_DOUBLE_EQ(est.Estimate(0.0, rng).estimate,
                   static_cast<double>(dataset.NumPairs()));
}

TEST(DegreeSamplingTest, ReasonableAtLowThreshold) {
  VectorDataset dataset = testing::SmallClusteredCorpus(600, 3);
  const double true_j = static_cast<double>(
      BruteForceJoinSize(dataset, SimilarityMeasure::kCosine, 0.1));
  ASSERT_GT(true_j, 0.0);
  DegreeSamplingEstimator est(dataset, SimilarityMeasure::kCosine,
                              {.num_vertices = 200,
                               .coarse_probes = 100,
                               .refined_probes = 400});
  const ErrorStats stats = RunAndScore(est, 0.1, 20, 5, true_j);
  EXPECT_NEAR(stats.mean_estimate, true_j, true_j * 0.4);
}

TEST(DegreeSamplingTest, CollapsesToZeroAtHighThreshold) {
  // The failure mode the paper predicts for bifocal-style estimation: at
  // high thresholds no sampled vertex looks dense and Ĵ = 0.
  VectorDataset dataset = testing::SmallClusteredCorpus(800, 7);
  DegreeSamplingEstimator est(dataset, SimilarityMeasure::kCosine);
  int zero_unguaranteed = 0;
  for (int t = 0; t < 20; ++t) {
    Rng rng(t);
    const EstimationResult r = est.Estimate(0.95, rng);
    if (r.estimate == 0.0 && !r.guaranteed) ++zero_unguaranteed;
  }
  EXPECT_GE(zero_unguaranteed, 12);
}

TEST(DegreeSamplingTest, EstimateWithinBounds) {
  VectorDataset dataset = testing::SmallClusteredCorpus(300, 9);
  DegreeSamplingEstimator est(dataset, SimilarityMeasure::kCosine);
  for (double tau : {0.1, 0.5, 0.9}) {
    Rng rng(static_cast<uint64_t>(tau * 31) + 1);
    const EstimationResult r = est.Estimate(tau, rng);
    EXPECT_GE(r.estimate, 0.0);
    EXPECT_LE(r.estimate, static_cast<double>(dataset.NumPairs()));
    EXPECT_GT(r.pairs_evaluated, 0u);
  }
}

}  // namespace
}  // namespace vsj
