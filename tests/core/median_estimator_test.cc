#include "vsj/core/median_estimator.h"

#include <gtest/gtest.h>

#include "test_util.h"
#include "vsj/eval/experiment.h"
#include "vsj/eval/ground_truth.h"

namespace vsj {
namespace {

TEST(MedianEstimatorTest, UsesAllTables) {
  auto setup = testing::MakeCosineSetup(300, 8, 5);
  MedianEstimator est(setup.dataset, *setup.index, SimilarityMeasure::kCosine);
  EXPECT_EQ(est.num_tables(), 5u);
}

TEST(MedianEstimatorTest, SingleTableMatchesLshSsDistribution) {
  auto setup = testing::MakeCosineSetup(400, 8, 1);
  MedianEstimator median(setup.dataset, *setup.index,
                         SimilarityMeasure::kCosine);
  LshSsEstimator direct(setup.dataset, setup.index->table(0),
                        SimilarityMeasure::kCosine);
  // Identical RNG stream → identical estimate.
  Rng a(42), b(42);
  EXPECT_DOUBLE_EQ(median.Estimate(0.5, a).estimate,
                   direct.Estimate(0.5, b).estimate);
}

TEST(MedianEstimatorTest, PairsEvaluatedSumAcrossTables) {
  auto setup = testing::MakeCosineSetup(300, 8, 3);
  MedianEstimator est(setup.dataset, *setup.index,
                      SimilarityMeasure::kCosine);
  LshSsEstimator single(setup.dataset, setup.index->table(0),
                        SimilarityMeasure::kCosine);
  Rng a(1), b(1);
  const uint64_t multi = est.Estimate(0.5, a).pairs_evaluated;
  const uint64_t one = single.Estimate(0.5, b).pairs_evaluated;
  EXPECT_GT(multi, one);  // roughly 3× in expectation
}

TEST(MedianEstimatorTest, MedianReducesSpreadVersusSingleTable) {
  auto setup = testing::MakeCosineSetup(1200, 10, 5, 31);
  GroundTruth truth(setup.dataset, SimilarityMeasure::kCosine, {0.8});
  const double true_j = static_cast<double>(truth.JoinSize(0.8));
  if (true_j == 0.0) GTEST_SKIP();
  MedianEstimator median(setup.dataset, *setup.index,
                         SimilarityMeasure::kCosine);
  LshSsEstimator single(setup.dataset, setup.index->table(0),
                        SimilarityMeasure::kCosine);
  const ErrorStats median_stats = RunAndScore(median, 0.8, 25, 7, true_j);
  const ErrorStats single_stats = RunAndScore(single, 0.8, 25, 7, true_j);
  // The ℓ-fold sample gives the median estimator no worse spread; allow
  // generous slack since both are already tight.
  EXPECT_LE(median_stats.std_dev, single_stats.std_dev * 1.5 + 1.0);
}

TEST(MedianEstimatorTest, EstimateWithinBounds) {
  auto setup = testing::MakeCosineSetup(300, 8, 4);
  MedianEstimator est(setup.dataset, *setup.index,
                      SimilarityMeasure::kCosine);
  for (double tau : {0.2, 0.6, 0.9}) {
    Rng rng(static_cast<uint64_t>(tau * 1000));
    const EstimationResult r = est.Estimate(tau, rng);
    EXPECT_GE(r.estimate, 0.0);
    EXPECT_LE(r.estimate, static_cast<double>(setup.dataset.NumPairs()));
  }
}

}  // namespace
}  // namespace vsj
