#include "vsj/core/cross_sampling.h"

#include <cmath>

#include <gtest/gtest.h>

#include "test_util.h"
#include "vsj/eval/experiment.h"
#include "vsj/join/brute_force_join.h"

namespace vsj {
namespace {

TEST(CrossSamplingTest, RecordCountIsSqrtOfBudget) {
  VectorDataset dataset = testing::SmallClusteredCorpus(400);
  CrossSampling cs(dataset, SimilarityMeasure::kCosine,
                   {.sample_size = 900});
  EXPECT_EQ(cs.num_records(), 30u);
}

TEST(CrossSamplingTest, RecordCountCappedByDatasetSize) {
  VectorDataset dataset = testing::SmallClusteredCorpus(20);
  CrossSampling cs(dataset, SimilarityMeasure::kCosine,
                   {.sample_size = 100000});
  EXPECT_EQ(cs.num_records(), 20u);
}

TEST(CrossSamplingTest, TauZeroEstimatesM) {
  VectorDataset dataset = testing::SmallClusteredCorpus(200);
  CrossSampling cs(dataset, SimilarityMeasure::kCosine);
  Rng rng(1);
  EXPECT_DOUBLE_EQ(cs.Estimate(0.0, rng).estimate,
                   static_cast<double>(dataset.NumPairs()));
}

TEST(CrossSamplingTest, ApproximatelyUnbiasedAtLowThreshold) {
  VectorDataset dataset = testing::SmallClusteredCorpus(500, 9);
  const double true_j = static_cast<double>(
      BruteForceJoinSize(dataset, SimilarityMeasure::kCosine, 0.1));
  ASSERT_GT(true_j, 0.0);
  CrossSampling cs(dataset, SimilarityMeasure::kCosine,
                   {.sample_size = 40000});
  const ErrorStats stats = RunAndScore(cs, 0.1, 30, 7, true_j);
  EXPECT_NEAR(stats.mean_estimate, true_j, true_j * 0.3);
}

TEST(CrossSamplingTest, PairsEvaluatedMatchesRecordChoose2) {
  VectorDataset dataset = testing::SmallClusteredCorpus(300);
  CrossSampling cs(dataset, SimilarityMeasure::kCosine,
                   {.sample_size = 400});
  Rng rng(5);
  const EstimationResult r = cs.Estimate(0.5, rng);
  const uint64_t records = cs.num_records();
  EXPECT_EQ(r.pairs_evaluated, records * (records - 1) / 2);
}

}  // namespace
}  // namespace vsj
