#include "vsj/core/lsh_s_estimator.h"

#include <gtest/gtest.h>

#include "test_util.h"
#include "vsj/eval/ground_truth.h"
#include "vsj/eval/experiment.h"

namespace vsj {
namespace {

TEST(LshSEstimatorTest, TauZeroReturnsM) {
  auto setup = testing::MakeCosineSetup(300, 8);
  LshSEstimator est(setup.dataset, *setup.family, setup.index->table(0));
  Rng rng(1);
  EXPECT_DOUBLE_EQ(est.Estimate(0.0, rng).estimate,
                   static_cast<double>(setup.dataset.NumPairs()));
}

TEST(LshSEstimatorTest, EstimateWithinBounds) {
  auto setup = testing::MakeCosineSetup(400, 8);
  LshSEstimator est(setup.dataset, *setup.family, setup.index->table(0));
  for (double tau : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    Rng rng(static_cast<uint64_t>(tau * 100));
    const EstimationResult r = est.Estimate(tau, rng);
    EXPECT_GE(r.estimate, 0.0);
    EXPECT_LE(r.estimate, static_cast<double>(setup.dataset.NumPairs()));
  }
}

TEST(LshSEstimatorTest, SampleSizeDefaultsToN) {
  auto setup = testing::MakeCosineSetup(250, 8);
  LshSEstimator est(setup.dataset, *setup.family, setup.index->table(0));
  Rng rng(2);
  EXPECT_EQ(est.Estimate(0.5, rng).pairs_evaluated, setup.dataset.size());
}

TEST(LshSEstimatorTest, ReasonableAtLowThresholdWithJaccard) {
  // With MinHash (exact Def. 3) and plentiful true pairs, LSH-S should land
  // within a factor ~2 of the truth at τ = 0.2.
  auto setup = testing::MakeJaccardSetup(800, 4);
  GroundTruth truth(setup.dataset, SimilarityMeasure::kJaccard, {0.2});
  const double true_j = static_cast<double>(truth.JoinSize(0.2));
  ASSERT_GT(true_j, 0.0);
  LshSEstimator est(setup.dataset, *setup.family, setup.index->table(0),
                    {.sample_size = 20000});
  const ErrorStats stats = RunAndScore(est, 0.2, 20, 3, true_j);
  EXPECT_GT(stats.mean_estimate, true_j / 3.0);
  EXPECT_LT(stats.mean_estimate, true_j * 3.0);
}

TEST(LshSEstimatorTest, FlagsUnreliableWhenNoTruePairsSampled) {
  // At τ = 0.999 virtually no sampled pair is true: the S_T fallback marks
  // the result as not guaranteed.
  auto setup = testing::MakeCosineSetup(400, 8, 1, 17);
  LshSEstimator est(setup.dataset, *setup.family, setup.index->table(0),
                    {.sample_size = 50});
  int unguaranteed = 0;
  for (int t = 0; t < 20; ++t) {
    Rng rng(t);
    if (!est.Estimate(0.999, rng).guaranteed) ++unguaranteed;
  }
  EXPECT_GT(unguaranteed, 15);
}

TEST(LshSEstimatorDeathTest, TableMustMatchDataset) {
  auto setup = testing::MakeCosineSetup(100, 4);
  VectorDataset other = testing::SmallClusteredCorpus(50);
  EXPECT_DEATH(
      LshSEstimator(other, *setup.family, setup.index->table(0)),
      "CHECK");
}

}  // namespace
}  // namespace vsj
