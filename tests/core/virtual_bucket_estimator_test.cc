#include "vsj/core/virtual_bucket_estimator.h"

#include <unordered_set>

#include <gtest/gtest.h>

#include "test_util.h"
#include "vsj/eval/experiment.h"
#include "vsj/eval/ground_truth.h"

namespace vsj {
namespace {

uint64_t ExactVirtualPairs(const LshIndex& index, size_t n) {
  uint64_t count = 0;
  for (VectorId u = 0; u < n; ++u) {
    for (VectorId v = u + 1; v < n; ++v) {
      count += index.SameBucketInAnyTable(u, v) ? 1 : 0;
    }
  }
  return count;
}

TEST(VirtualBucketEstimatorTest, VirtualPairCountMatchesBruteForce) {
  auto setup = testing::MakeCosineSetup(200, 6, 3);
  VirtualBucketEstimator est(setup.dataset, *setup.index,
                             SimilarityMeasure::kCosine);
  EXPECT_EQ(est.NumVirtualSameBucketPairs(),
            ExactVirtualPairs(*setup.index, setup.dataset.size()));
}

TEST(VirtualBucketEstimatorTest, VirtualStratumIsSupersetOfEachTable) {
  auto setup = testing::MakeCosineSetup(300, 8, 4);
  VirtualBucketEstimator est(setup.dataset, *setup.index,
                             SimilarityMeasure::kCosine);
  for (uint32_t t = 0; t < setup.index->num_tables(); ++t) {
    EXPECT_GE(est.NumVirtualSameBucketPairs(),
              setup.index->table(t).NumSameBucketPairs());
  }
}

TEST(VirtualBucketEstimatorTest, TauZeroReturnsM) {
  auto setup = testing::MakeCosineSetup(200, 6, 2);
  VirtualBucketEstimator est(setup.dataset, *setup.index,
                             SimilarityMeasure::kCosine);
  Rng rng(1);
  EXPECT_DOUBLE_EQ(est.Estimate(0.0, rng).estimate,
                   static_cast<double>(setup.dataset.NumPairs()));
}

TEST(VirtualBucketEstimatorTest, EstimateWithinBounds) {
  auto setup = testing::MakeCosineSetup(300, 8, 3);
  VirtualBucketEstimator est(setup.dataset, *setup.index,
                             SimilarityMeasure::kCosine);
  for (double tau : {0.1, 0.5, 0.9}) {
    Rng rng(static_cast<uint64_t>(tau * 100) + 1);
    const EstimationResult r = est.Estimate(tau, rng);
    EXPECT_GE(r.estimate, 0.0);
    EXPECT_LE(r.estimate, static_cast<double>(setup.dataset.NumPairs()));
  }
}

TEST(VirtualBucketEstimatorTest, ReasonableAccuracyAtModerateTau) {
  auto setup = testing::MakeCosineSetup(1000, 12, 4, 41);
  GroundTruth truth(setup.dataset, SimilarityMeasure::kCosine, {0.7});
  const double true_j = static_cast<double>(truth.JoinSize(0.7));
  if (true_j == 0.0) GTEST_SKIP();
  VirtualBucketEstimator est(setup.dataset, *setup.index,
                             SimilarityMeasure::kCosine);
  const ErrorStats stats = RunAndScore(est, 0.7, 25, 3, true_j);
  EXPECT_GT(stats.mean_estimate, true_j * 0.2);
  EXPECT_LT(stats.mean_estimate, true_j * 5.0);
}

TEST(VirtualBucketEstimatorTest, LargerKBenefitsFromVirtualBuckets) {
  // The motivating scenario of App. B.2.1: with an overly selective g
  // (large k), the union stratum H catches more true pairs than any single
  // table's stratum.
  auto setup = testing::MakeCosineSetup(500, 24, 5, 43);
  VirtualBucketEstimator virt(setup.dataset, *setup.index,
                              SimilarityMeasure::kCosine);
  EXPECT_GT(virt.NumVirtualSameBucketPairs(),
            setup.index->table(0).NumSameBucketPairs());
}

}  // namespace
}  // namespace vsj
