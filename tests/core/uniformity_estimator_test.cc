#include "vsj/core/uniformity_estimator.h"

#include <cmath>

#include <gtest/gtest.h>

#include "test_util.h"
#include "vsj/lsh/minhash.h"

namespace vsj {
namespace {

TEST(UniformityEstimatorTest, ClosedFormMatchesPaperExample) {
  // Eq. 4: Ĵ_U = ((k+1)·N_H − τ^k·M) / Σ_{i=0}^{k-1} τ^i, hand-computed.
  const uint32_t k = 2;
  const uint64_t n_h = 100;
  const uint64_t m = 1000;
  const double tau = 0.5;
  // ((3)(100) − 0.25·1000) / (1 + 0.5) = (300 − 250)/1.5.
  EXPECT_NEAR(UniformityEstimator::ClosedFormIdealized(n_h, m, k, tau),
              50.0 / 1.5, 1e-9);
}

TEST(UniformityEstimatorTest, NumericMatchesClosedFormForMinHash) {
  // The generalized (integral) estimator must reduce to Eq. 4 when the
  // family satisfies Definition 3 exactly.
  auto setup = testing::MakeJaccardSetup(400, 4);
  const LshTable& table = setup.index->table(0);
  UniformityEstimator est(table, *setup.family);
  Rng rng(1);
  const uint64_t m = setup.dataset.NumPairs();
  for (double tau : {0.2, 0.5, 0.8}) {
    const double closed = std::clamp(
        UniformityEstimator::ClosedFormIdealized(
            table.NumSameBucketPairs(), m, table.k(), tau),
        0.0, static_cast<double>(m));
    const double numeric = est.Estimate(tau, rng).estimate;
    EXPECT_NEAR(numeric, closed, std::max(1.0, closed * 1e-4))
        << "tau = " << tau;
  }
}

TEST(UniformityEstimatorTest, TauZeroReturnsM) {
  auto setup = testing::MakeCosineSetup(300, 8);
  UniformityEstimator est(setup.index->table(0), *setup.family);
  Rng rng(2);
  EXPECT_DOUBLE_EQ(est.Estimate(0.0, rng).estimate,
                   static_cast<double>(setup.dataset.NumPairs()));
}

TEST(UniformityEstimatorTest, EstimateIsClamped) {
  auto setup = testing::MakeCosineSetup(300, 8);
  UniformityEstimator est(setup.index->table(0), *setup.family);
  Rng rng(3);
  for (double tau : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    const EstimationResult r = est.Estimate(tau, rng);
    EXPECT_GE(r.estimate, 0.0);
    EXPECT_LE(r.estimate, static_cast<double>(setup.dataset.NumPairs()));
  }
}

TEST(UniformityEstimatorTest, DeterministicAcrossCalls) {
  auto setup = testing::MakeCosineSetup(200, 6);
  UniformityEstimator est(setup.index->table(0), *setup.family);
  Rng a(1), b(999);
  EXPECT_DOUBLE_EQ(est.Estimate(0.5, a).estimate,
                   est.Estimate(0.5, b).estimate);
}

TEST(UniformityEstimatorTest, ExactOnUniformSimilarityToy) {
  // Construct a toy "dataset" whose pair similarities are uniform by
  // checking the estimator's algebra directly: with f(s) = s^k and
  // uniform similarities, N_H ≈ M·∫f = M/(k+1); then Ĵ_U(τ) ≈ (1−τ)·M.
  const uint32_t k = 3;
  const uint64_t m = 1000000;
  const auto n_h = static_cast<uint64_t>(m / (k + 1.0));
  for (double tau : {0.25, 0.5, 0.75}) {
    const double est =
        UniformityEstimator::ClosedFormIdealized(n_h, m, k, tau);
    EXPECT_NEAR(est, (1.0 - tau) * m, m * 0.001) << "tau = " << tau;
  }
}

}  // namespace
}  // namespace vsj
