// Unit tests of the shared SampleH / SampleL templates: the degenerate
// budget guards (the delta == 0 / m == 0 NaN regressions), the exact
// budget-boundary semantics of the dampening modes, and the batched pair
// evaluation kernel's equivalence with the scalar Similarity loop.

#include "vsj/core/stratified_sampling.h"

#include <cmath>
#include <cstddef>
#include <vector>

#include <gtest/gtest.h>

#include "test_util.h"
#include "vsj/vector/similarity.h"
#include "vsj/vector/sparse_vector.h"
#include "vsj/vector/vector_dataset.h"

namespace vsj {
namespace {

/// Four vectors with fully controlled pairwise similarities: ids 0 and 1
/// are identical (cosine 1), ids 2 and 3 are orthogonal to each other and
/// to everything (cosine 0).
VectorDataset ScriptedCorpus() {
  VectorDataset dataset;
  dataset.Add(SparseVector::FromDims({1, 2}).ref());
  dataset.Add(SparseVector::FromDims({1, 2}).ref());
  dataset.Add(SparseVector::FromDims({10}).ref());
  dataset.Add(SparseVector::FromDims({11}).ref());
  return dataset;
}

/// A pair source replaying a fixed script; ignores the RNG (legal for a
/// direct template caller — the RNG contract is the engines' concern).
struct ScriptedPairs {
  std::vector<VectorPair> pairs;
  size_t next = 0;
  VectorPair operator()(Rng&) { return pairs[next++]; }
};

TEST(StratifiedSamplingTest, SampleLZeroDeltaIsGuardedNotNaN) {
  // Regression: delta == 0 means the adaptive loop never draws, and the
  // "reliable" scale-up used to compute 0 · N_L / 0 = NaN.
  const VectorDataset dataset = ScriptedCorpus();
  Rng rng(1);
  uint64_t evaluated = 0;
  bool reliable = true;
  ScriptedPairs pairs;  // never consulted
  const double estimate = SampleStratumL(
      DatasetView(dataset), SimilarityMeasure::kCosine, 0.5,
      /*num_pairs_l=*/6, /*m_l=*/4, /*delta=*/0,
      DampeningMode::kSafeLowerBound, 1.0, pairs, rng, &evaluated, &reliable);
  EXPECT_FALSE(std::isnan(estimate));
  EXPECT_EQ(estimate, 0.0);
  EXPECT_FALSE(reliable);
  EXPECT_EQ(evaluated, 0u);
}

TEST(StratifiedSamplingTest, SampleLZeroBudgetIsGuardedNotNaN) {
  const VectorDataset dataset = ScriptedCorpus();
  Rng rng(1);
  uint64_t evaluated = 0;
  bool reliable = true;
  ScriptedPairs pairs;
  const double estimate = SampleStratumL(
      DatasetView(dataset), SimilarityMeasure::kCosine, 0.5,
      /*num_pairs_l=*/6, /*m_l=*/0, /*delta=*/2,
      DampeningMode::kAdaptiveNlOverDelta, 1.0, pairs, rng, &evaluated,
      &reliable);
  EXPECT_FALSE(std::isnan(estimate));
  EXPECT_EQ(estimate, 0.0);
  EXPECT_FALSE(reliable);
}

TEST(StratifiedSamplingTest, SampleHZeroBudgetIsGuardedNotNaN) {
  // Regression: m_h == 0 used to scale 0 hits by N_H / 0 = NaN.
  const VectorDataset dataset = ScriptedCorpus();
  Rng rng(1);
  uint64_t evaluated = 0;
  ScriptedPairs pairs;
  const double estimate = SampleStratumH(
      DatasetView(dataset), SimilarityMeasure::kCosine, 0.5,
      /*num_pairs_h=*/3, /*m_h=*/0, pairs, rng, &evaluated);
  EXPECT_FALSE(std::isnan(estimate));
  EXPECT_EQ(estimate, 0.0);
  EXPECT_EQ(evaluated, 0u);
}

TEST(StratifiedSamplingTest, DeltaReachedOnFinalDrawStaysReliable) {
  // The exact budget boundary: samples == m_l with hits == delta landing
  // on the very last draw. The adaptive guarantee holds (δ was reached),
  // so every dampening mode must return the same reliable scale-up
  // hits · N_L / samples and leave *reliable set.
  const VectorDataset dataset = ScriptedCorpus();
  for (DampeningMode mode :
       {DampeningMode::kSafeLowerBound, DampeningMode::kFixedFactor,
        DampeningMode::kAdaptiveNlOverDelta}) {
    Rng rng(1);
    uint64_t evaluated = 0;
    bool reliable = true;  // callers initialize true; SampleL only clears
    // miss, miss, hit, hit: the 2nd hit (δ = 2) arrives on draw 4 (= m_l).
    ScriptedPairs pairs{{{2, 3}, {2, 3}, {0, 1}, {0, 1}}};
    const double estimate = SampleStratumL(
        DatasetView(dataset), SimilarityMeasure::kCosine, 0.5,
        /*num_pairs_l=*/6, /*m_l=*/4, /*delta=*/2, mode,
        /*dampening_factor=*/0.5, pairs, rng, &evaluated, &reliable);
    EXPECT_DOUBLE_EQ(estimate, 2.0 * 6.0 / 4.0) << static_cast<int>(mode);
    EXPECT_TRUE(reliable) << static_cast<int>(mode);
    EXPECT_EQ(evaluated, 4u) << static_cast<int>(mode);
  }
}

TEST(StratifiedSamplingTest, DeltaMissedAtBudgetAppliesEachDampening) {
  // One hit short of δ when the budget runs out: *reliable clears and the
  // three modes diverge exactly as Theorems 1/2 prescribe.
  const VectorDataset dataset = ScriptedCorpus();
  // miss, miss, miss, hit: hits = 1 < δ = 2 after m_l = 4 draws.
  const std::vector<VectorPair> script = {{2, 3}, {2, 3}, {2, 3}, {0, 1}};
  struct Case {
    DampeningMode mode;
    double expected;
  };
  const Case cases[] = {
      // Safe lower bound: n_L itself.
      {DampeningMode::kSafeLowerBound, 1.0},
      // n_L · c_s · N_L / m_L with c_s = 0.5.
      {DampeningMode::kFixedFactor, 1.0 * 0.5 * 6.0 / 4.0},
      // c_s = n_L / δ = 0.5.
      {DampeningMode::kAdaptiveNlOverDelta, 1.0 * 0.5 * 6.0 / 4.0},
  };
  for (const Case& c : cases) {
    Rng rng(1);
    uint64_t evaluated = 0;
    bool reliable = true;
    ScriptedPairs pairs{script};
    const double estimate = SampleStratumL(
        DatasetView(dataset), SimilarityMeasure::kCosine, 0.5,
        /*num_pairs_l=*/6, /*m_l=*/4, /*delta=*/2, c.mode,
        /*dampening_factor=*/0.5, pairs, rng, &evaluated, &reliable);
    EXPECT_DOUBLE_EQ(estimate, c.expected) << static_cast<int>(c.mode);
    EXPECT_FALSE(reliable) << static_cast<int>(c.mode);
  }
}

TEST(StratifiedSamplingTest, CountPairsAtOrAboveMatchesScalarLoop) {
  // The batched kernel must count exactly what the unbatched Similarity
  // loop counts — same arithmetic per pair, any count, any prefetch
  // distance (bit-identity contract of the batched pipeline).
  const VectorDataset dataset = testing::SmallClusteredCorpus(200, 3);
  const DatasetView view(dataset);
  Rng rng(99);
  std::vector<VectorId> firsts, seconds;
  for (size_t i = 0; i < 301; ++i) {
    firsts.push_back(static_cast<VectorId>(rng.Below(dataset.size())));
    seconds.push_back(static_cast<VectorId>(rng.Below(dataset.size())));
  }
  for (SimilarityMeasure measure :
       {SimilarityMeasure::kCosine, SimilarityMeasure::kJaccard}) {
    for (double tau : {0.1, 0.5, 0.9}) {
      for (size_t count : {size_t{0}, size_t{1}, size_t{7}, size_t{64},
                           size_t{301}}) {
        uint64_t expected = 0;
        for (size_t i = 0; i < count; ++i) {
          if (Similarity(measure, view[firsts[i]], view[seconds[i]]) >= tau) {
            ++expected;
          }
        }
        for (size_t prefetch : {size_t{0}, size_t{8}, size_t{1000}}) {
          EXPECT_EQ(CountPairsAtOrAbove(measure, view, firsts.data(),
                                        seconds.data(), count, tau, prefetch),
                    expected)
              << "count=" << count << " tau=" << tau
              << " prefetch=" << prefetch;
        }
      }
    }
  }
}

}  // namespace
}  // namespace vsj
