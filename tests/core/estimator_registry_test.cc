#include "vsj/core/estimator_registry.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace vsj {
namespace {

class EstimatorRegistryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    setup_ = testing::MakeCosineSetup(300, 8, 2);
    context_.dataset = setup_.dataset;
    context_.index = setup_.index.get();
    context_.measure = SimilarityMeasure::kCosine;
  }

  testing::CosineSetup setup_;
  EstimatorContext context_;
};

TEST_F(EstimatorRegistryTest, CreatesEveryRegisteredEstimator) {
  for (const std::string& name : AllEstimatorNames()) {
    auto estimator = CreateEstimator(name, context_);
    ASSERT_NE(estimator, nullptr) << name;
    Rng rng(1);
    const EstimationResult r = estimator->Estimate(0.5, rng);
    EXPECT_GE(r.estimate, 0.0) << name;
    EXPECT_LE(r.estimate, static_cast<double>(setup_.dataset.NumPairs()))
        << name;
  }
}

TEST_F(EstimatorRegistryTest, NamesRoundTrip) {
  EXPECT_EQ(CreateEstimator("LSH-SS", context_)->name(), "LSH-SS");
  EXPECT_EQ(CreateEstimator("LSH-SS(D)", context_)->name(), "LSH-SS(D)");
  EXPECT_EQ(CreateEstimator("RS(pop)", context_)->name(), "RS(pop)");
  EXPECT_EQ(CreateEstimator("RS(cross)", context_)->name(), "RS(cross)");
  EXPECT_EQ(CreateEstimator("LC", context_)->name(), "LC");
}

TEST_F(EstimatorRegistryTest, HeadlineNamesAreSubsetOfAll) {
  const auto all = AllEstimatorNames();
  for (const std::string& name : HeadlineEstimatorNames()) {
    EXPECT_NE(std::find(all.begin(), all.end(), name), all.end()) << name;
  }
}

TEST_F(EstimatorRegistryTest, OptionsPropagate) {
  context_.lsh_ss.sample_size_h = 77;
  auto estimator = CreateEstimator("LSH-SS", context_);
  auto* lsh_ss = dynamic_cast<LshSsEstimator*>(estimator.get());
  ASSERT_NE(lsh_ss, nullptr);
  EXPECT_EQ(lsh_ss->sample_size_h(), 77u);
}

TEST_F(EstimatorRegistryTest, UnknownNameAborts) {
  EXPECT_DEATH(CreateEstimator("NoSuchEstimator", context_), "unknown");
}

TEST_F(EstimatorRegistryTest, MissingIndexAborts) {
  EstimatorContext no_index;
  no_index.dataset = setup_.dataset;
  EXPECT_DEATH(CreateEstimator("LSH-SS", no_index), "requires an LSH index");
}

TEST_F(EstimatorRegistryTest, MissingDatasetAborts) {
  EstimatorContext empty;
  EXPECT_DEATH(CreateEstimator("RS(pop)", empty), "dataset");
}

TEST_F(EstimatorRegistryTest, EveryIndexFreeEstimatorWorksWithoutIndex) {
  // The pure sampling estimators must construct from a dataset alone.
  EstimatorContext no_index;
  no_index.dataset = setup_.dataset;
  no_index.measure = SimilarityMeasure::kCosine;
  for (const char* name : {"RS(pop)", "RS(cross)", "Adaptive", "Bifocal"}) {
    auto estimator = CreateEstimator(name, no_index);
    ASSERT_NE(estimator, nullptr) << name;
    Rng rng(3);
    EXPECT_GE(estimator->Estimate(0.6, rng).estimate, 0.0) << name;
  }
}

TEST_F(EstimatorRegistryTest, EveryLshEstimatorAbortsWithoutIndex) {
  EstimatorContext no_index;
  no_index.dataset = setup_.dataset;
  for (const char* name : {"LSH-SS", "LSH-SS(D)", "LSH-S", "J_U", "LC",
                           "LSH-SS(median)", "LSH-SS(vbucket)"}) {
    EXPECT_DEATH(CreateEstimator(name, no_index), "requires an LSH index")
        << name;
  }
}

TEST_F(EstimatorRegistryTest, EveryNameRoundTripsItsDisplayName) {
  for (const std::string& name : AllEstimatorNames()) {
    auto estimator = CreateEstimator(name, context_);
    EXPECT_EQ(estimator->name(), name) << name;
  }
}

TEST_F(EstimatorRegistryTest, CreatesUnderJaccardMeasureToo) {
  auto jaccard = testing::MakeJaccardSetup(300, 6, 2);
  EstimatorContext context;
  context.dataset = jaccard.dataset;
  context.index = jaccard.index.get();
  context.measure = SimilarityMeasure::kJaccard;
  for (const std::string& name : AllEstimatorNames()) {
    auto estimator = CreateEstimator(name, context);
    ASSERT_NE(estimator, nullptr) << name;
    Rng rng(1);
    const EstimationResult r = estimator->Estimate(0.5, rng);
    EXPECT_GE(r.estimate, 0.0) << name;
    EXPECT_LE(r.estimate, static_cast<double>(jaccard.dataset.NumPairs()))
        << name;
  }
}

}  // namespace
}  // namespace vsj
