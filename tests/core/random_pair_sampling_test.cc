#include "vsj/core/random_pair_sampling.h"

#include <gtest/gtest.h>

#include "test_util.h"
#include "vsj/eval/experiment.h"
#include "vsj/join/brute_force_join.h"

namespace vsj {
namespace {

TEST(RandomPairSamplingTest, DefaultSampleSizeIs1_5N) {
  VectorDataset dataset = testing::SmallClusteredCorpus(400);
  RandomPairSampling rs(dataset, SimilarityMeasure::kCosine);
  EXPECT_EQ(rs.sample_size(), 600u);
}

TEST(RandomPairSamplingTest, ExplicitSampleSizeWins) {
  VectorDataset dataset = testing::SmallClusteredCorpus(400);
  RandomPairSampling rs(dataset, SimilarityMeasure::kCosine, {.sample_size = 123});
  EXPECT_EQ(rs.sample_size(), 123u);
}

TEST(RandomPairSamplingTest, TauZeroEstimatesM) {
  VectorDataset dataset = testing::SmallClusteredCorpus(300);
  RandomPairSampling rs(dataset, SimilarityMeasure::kCosine);
  Rng rng(1);
  const EstimationResult r = rs.Estimate(0.0, rng);
  EXPECT_DOUBLE_EQ(r.estimate, static_cast<double>(dataset.NumPairs()));
}

TEST(RandomPairSamplingTest, UnbiasedAtLowThreshold) {
  VectorDataset dataset = testing::SmallClusteredCorpus(400, 7);
  const double true_j = static_cast<double>(
      BruteForceJoinSize(dataset, SimilarityMeasure::kCosine, 0.1));
  ASSERT_GT(true_j, 0.0);
  RandomPairSampling rs(dataset, SimilarityMeasure::kCosine,
                        {.sample_size = 20000});
  const ErrorStats stats = RunAndScore(rs, 0.1, 30, 99, true_j);
  EXPECT_NEAR(stats.mean_estimate, true_j, true_j * 0.2);
}

TEST(RandomPairSamplingTest, EstimateWithinBounds) {
  VectorDataset dataset = testing::SmallClusteredCorpus(300, 5);
  RandomPairSampling rs(dataset, SimilarityMeasure::kCosine);
  Rng rng(3);
  for (double tau : {0.1, 0.5, 0.9}) {
    const EstimationResult r = rs.Estimate(tau, rng);
    EXPECT_GE(r.estimate, 0.0);
    EXPECT_LE(r.estimate, static_cast<double>(dataset.NumPairs()));
    EXPECT_EQ(r.pairs_evaluated, rs.sample_size());
  }
}

TEST(RandomPairSamplingTest, HighThresholdUsuallyMissesRareTruePairs) {
  // The motivating failure: with tiny selectivity, most trials return 0.
  VectorDataset dataset;
  // 2 identical + 498 mutually dissimilar vectors.
  dataset.Add(SparseVector::FromDims({1, 2, 3}));
  dataset.Add(SparseVector::FromDims({1, 2, 3}));
  for (int i = 0; i < 498; ++i) {
    dataset.Add(SparseVector::FromDims(
        {static_cast<DimId>(10 + 3 * i), static_cast<DimId>(11 + 3 * i)}));
  }
  RandomPairSampling rs(dataset, SimilarityMeasure::kCosine,
                        {.sample_size = 100});
  int zero_estimates = 0;
  for (int t = 0; t < 50; ++t) {
    Rng rng(t);
    if (rs.Estimate(0.9, rng).estimate == 0.0) ++zero_estimates;
  }
  EXPECT_GT(zero_estimates, 40);  // selectivity ≈ 1/124750 per sample
}

TEST(RandomPairSamplingDeathTest, RequiresTwoVectors) {
  VectorDataset dataset;
  dataset.Add(SparseVector::FromDims({1}));
  EXPECT_DEATH(RandomPairSampling(dataset, SimilarityMeasure::kCosine),
               "CHECK");
}

}  // namespace
}  // namespace vsj
