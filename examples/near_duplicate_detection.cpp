// Near-duplicate detection scenario (the paper's §1 application list).
//
// Before running an expensive all-pairs near-duplicate scan over a corpus,
// estimate how many near-duplicate pairs exist at the chosen threshold —
// if the estimate is tiny, a full exact join is affordable; if it is huge,
// the pipeline should switch to a clustering/streaming strategy instead.
// The example sizes the decision with LSH-SS, then actually runs the exact
// All-Pairs join to verify both the estimate and the decision.

#include <iostream>

#include "vsj/core/lsh_ss_estimator.h"
#include "vsj/gen/workloads.h"
#include "vsj/join/all_pairs_join.h"
#include "vsj/lsh/lsh_table.h"
#include "vsj/lsh/simhash.h"
#include "vsj/util/table_printer.h"
#include "vsj/util/timer.h"

int main() {
  const size_t n = 10000;
  const double tau = 0.85;  // "near duplicate" similarity
  const double budget_pairs = 1e5;  // max result size we accept to verify

  // A corpus with a deliberately fat duplicate tail (scraped news dumps,
  // mirrored pages, boilerplate).
  vsj::CorpusConfig config = vsj::DblpLikeConfig(n);
  config.cluster_fraction = 0.08;
  vsj::VectorDataset docs = vsj::GenerateCorpus(config);

  vsj::Timer timer;
  vsj::SimHashFamily family(11);
  vsj::LshTable table(family, docs, 20);
  std::cout << "index built in " << vsj::TablePrinter::Fmt(
                   timer.ElapsedMillis(), 1)
            << " ms\n";

  vsj::LshSsEstimator estimator(docs, table,
                                vsj::SimilarityMeasure::kCosine);
  vsj::Rng rng(5);
  timer.Reset();
  const vsj::EstimationResult estimate = estimator.Estimate(tau, rng);
  std::cout << "estimated near-duplicate pairs at tau = " << tau << ": "
            << vsj::TablePrinter::Count(estimate.estimate) << " (in "
            << vsj::TablePrinter::Fmt(timer.ElapsedMillis(), 1) << " ms, "
            << estimate.pairs_evaluated << " similarity evaluations)\n";

  if (estimate.estimate > budget_pairs) {
    std::cout << "decision: estimated result exceeds the "
              << vsj::TablePrinter::Count(budget_pairs)
              << "-pair budget; skip the exact scan.\n";
    return 0;
  }

  std::cout << "decision: estimate within budget, running exact All-Pairs "
               "join...\n";
  timer.Reset();
  vsj::AllPairsStats stats;
  const auto pairs = vsj::AllPairsJoin(docs, tau, &stats);
  std::cout << "exact join: " << pairs.size() << " near-duplicate pairs in "
            << vsj::TablePrinter::Fmt(timer.ElapsedMillis(), 1) << " ms ("
            << stats.candidates_admitted << " candidates admitted)\n";

  const double ratio =
      pairs.empty() ? 0.0 : estimate.estimate / static_cast<double>(
                                                    pairs.size());
  std::cout << "estimate / exact = " << vsj::TablePrinter::Fmt(ratio, 2)
            << "\n";
  return 0;
}
