// End-to-end text pipeline: raw documents → vectors → persisted dataset →
// LSH index → join-size estimate, exercising the text and io modules.
//
// Mimics a production ingestion flow: titles are vectorized once and saved;
// a later process loads the dataset, builds the (cheap, deterministic) LSH
// table, and serves join-size estimates for query optimization.

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "vsj/core/lsh_ss_estimator.h"
#include "vsj/io/dataset_io.h"
#include "vsj/join/brute_force_join.h"
#include "vsj/lsh/lsh_table.h"
#include "vsj/lsh/simhash.h"
#include "vsj/text/vectorizer.h"
#include "vsj/util/rng.h"

namespace {

/// Synthesizes paper-title-like strings, with rewordings and duplicates.
std::vector<std::string> MakeTitles(size_t count) {
  const std::vector<std::string> topics = {
      "similarity join size estimation", "locality sensitive hashing",
      "query optimization in database systems", "near duplicate detection",
      "random sampling for selectivity", "inverted index construction",
      "cosine similarity search", "stratified sampling with guarantees"};
  const std::vector<std::string> qualifiers = {
      "efficient", "scalable", "practical",  "approximate",
      "exact",     "adaptive", "incremental"};
  const std::vector<std::string> suffixes = {
      "using lsh",       "with probabilistic guarantees",
      "for text corpora", "in high dimensions", "revisited",
      "a survey",        "at web scale"};
  vsj::Rng rng(2011);
  std::vector<std::string> titles;
  titles.reserve(count);
  while (titles.size() < count) {
    std::string title = qualifiers[rng.Below(qualifiers.size())] + " " +
                        topics[rng.Below(topics.size())] + " " +
                        suffixes[rng.Below(suffixes.size())];
    titles.push_back(title);
    // Occasionally emit a duplicate or a lightly reworded variant.
    if (titles.size() < count && rng.NextBool(0.15)) {
      if (rng.NextBool(0.5)) {
        titles.push_back(title);  // exact duplicate
      } else {
        titles.push_back(title + " " +
                         qualifiers[rng.Below(qualifiers.size())]);
      }
    }
  }
  return titles;
}

}  // namespace

int main() {
  // --- Ingestion: vectorize and persist. ---
  const std::vector<std::string> titles = MakeTitles(4000);
  vsj::TextVectorizer vectorizer;
  vsj::VectorDataset dataset = vectorizer.FitTransform(titles, "titles");
  std::cout << "vectorized " << dataset.size() << " titles, vocabulary "
            << vectorizer.vocabulary_size() << " tokens\n";

  const std::string path = "/tmp/vsj_text_pipeline.vsjb";
  if (const vsj::IoStatus status = vsj::SaveDatasetToFile(dataset, path);
      !status.ok()) {
    std::cerr << "failed to save dataset: " << status.ToString() << "\n";
    return 1;
  }

  // --- Serving: load, index, estimate. ---
  vsj::VectorDataset loaded;
  if (const vsj::IoStatus status = vsj::LoadDatasetFromFile(path, &loaded);
      !status.ok()) {
    std::cerr << "failed to load dataset: " << status.ToString() << "\n";
    return 1;
  }
  std::remove(path.c_str());
  std::cout << "reloaded dataset '" << loaded.name() << "' with "
            << loaded.size() << " vectors\n";

  vsj::SimHashFamily family(7);
  vsj::LshTable table(family, loaded, /*k=*/16);
  vsj::LshSsEstimator estimator(loaded, table,
                                vsj::SimilarityMeasure::kCosine);

  vsj::Rng rng(3);
  for (double tau : {0.5, 0.8, 0.95}) {
    const double estimate = estimator.Estimate(tau, rng).estimate;
    const uint64_t exact = vsj::BruteForceJoinSize(
        loaded, vsj::SimilarityMeasure::kCosine, tau);
    std::cout << "tau = " << tau << ": estimated " << estimate
              << " similar title pairs (exact " << exact << ")\n";
  }
  return 0;
}
