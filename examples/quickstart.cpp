// Quickstart: estimate a vector similarity join size with LSH-SS.
//
// Builds a small synthetic document corpus, indexes it with one SimHash
// LSH table (k = 20 hash functions), and estimates the number of pairs with
// cosine similarity ≥ τ — comparing the estimate against the exact answer.
//
//   $ ./quickstart [n] [tau]

#include <cstdlib>
#include <iostream>

#include "vsj/core/lsh_ss_estimator.h"
#include "vsj/gen/workloads.h"
#include "vsj/join/brute_force_join.h"
#include "vsj/lsh/lsh_table.h"
#include "vsj/lsh/simhash.h"

int main(int argc, char** argv) {
  const size_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 5000;
  const double tau = argc > 2 ? std::strtod(argv[2], nullptr) : 0.7;

  // 1. A dataset: any collection of sparse vectors. Here, a synthetic
  //    DBLP-flavoured corpus (binary bag-of-words titles).
  vsj::VectorDataset docs = vsj::GenerateCorpus(vsj::DblpLikeConfig(n));
  std::cout << "corpus: " << docs.size() << " documents, "
            << docs.NumPairs() << " pairs\n";

  // 2. An LSH table. SimHash is locality sensitive for cosine similarity;
  //    the table stores bucket counts (the paper's only index extension).
  vsj::SimHashFamily family(/*seed=*/42);
  vsj::LshTable table(family, docs, /*k=*/20);
  std::cout << "LSH table: " << table.num_buckets() << " buckets, N_H = "
            << table.NumSameBucketPairs() << " same-bucket pairs\n";

  // 3. The estimator. LSH-SS stratifies pairs into same-bucket /
  //    cross-bucket strata and samples each appropriately (Algorithm 1).
  vsj::LshSsEstimator estimator(docs, table, vsj::SimilarityMeasure::kCosine);
  vsj::Rng rng(7);
  const vsj::EstimationResult result = estimator.Estimate(tau, rng);
  std::cout << "estimate at tau = " << tau << ": " << result.estimate
            << "  (stratum H: " << result.stratum_h_estimate
            << ", stratum L: " << result.stratum_l_estimate
            << ", pairs evaluated: " << result.pairs_evaluated << ")\n";

  // 4. Sanity check against the exact join (feasible at this small scale).
  const uint64_t exact =
      vsj::BruteForceJoinSize(docs, vsj::SimilarityMeasure::kCosine, tau);
  std::cout << "exact join size: " << exact << "\n";
  return 0;
}
