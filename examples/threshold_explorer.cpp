// Threshold exploration: sweep τ and compare every estimator in the
// library against the exact join size — a compact tour of the public API
// (registry, ground truth, experiment runner).
//
//   $ ./threshold_explorer [n]

#include <cstdlib>
#include <iostream>

#include "vsj/core/estimator_registry.h"
#include "vsj/eval/experiment.h"
#include "vsj/eval/ground_truth.h"
#include "vsj/gen/workloads.h"
#include "vsj/lsh/lsh_index.h"
#include "vsj/lsh/simhash.h"
#include "vsj/util/table_printer.h"

int main(int argc, char** argv) {
  const size_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 5000;

  vsj::VectorDataset docs = vsj::GenerateCorpus(vsj::DblpLikeConfig(n));
  vsj::SimHashFamily family(1);
  // Two tables so the multi-table estimators (median, virtual bucket) have
  // something to work with.
  vsj::LshIndex index(family, docs, /*k=*/16, /*num_tables=*/2);

  vsj::EstimatorContext context;
  context.dataset = docs;
  context.index = &index;

  vsj::GroundTruth truth(docs, vsj::SimilarityMeasure::kCosine,
                         vsj::StandardThresholds());

  vsj::TablePrinter table("Mean estimate over 10 trials vs exact join size "
                          "(n = " + std::to_string(n) + ")");
  std::vector<std::string> header = {"tau", "exact"};
  const auto names = vsj::AllEstimatorNames();
  for (const auto& name : names) header.push_back(name);
  table.SetHeader(header);

  std::vector<std::unique_ptr<vsj::JoinSizeEstimator>> estimators;
  for (const auto& name : names) {
    estimators.push_back(vsj::CreateEstimator(name, context));
  }

  for (double tau : vsj::StandardThresholds()) {
    std::vector<std::string> row = {
        vsj::TablePrinter::Fmt(tau, 1),
        vsj::TablePrinter::Count(
            static_cast<double>(truth.JoinSize(tau)))};
    for (const auto& estimator : estimators) {
      const vsj::TrialSeries series =
          vsj::RunTrials(*estimator, tau, /*trials=*/10, /*seed=*/17);
      double mean = 0.0;
      for (double e : series.estimates) mean += e;
      mean /= static_cast<double>(series.estimates.size());
      row.push_back(vsj::TablePrinter::Count(mean));
    }
    table.AddRow(std::move(row));
  }
  table.Print(std::cout);
  std::cout << "\n(LC and J_U are model-based; LSH-S degrades at high tau; "
               "LSH-SS variants track the exact sizes — see the paper's "
               "Figure 2 and the bench/ binaries for full error metrics)\n";
  return 0;
}
