// Query-optimizer scenario: use join-size estimates to pick a plan.
//
// The paper's motivation (§1): a similarity join is a primitive operator,
// and the optimizer needs its output cardinality to order operators. This
// example models a two-step query
//
//     SELECT * FROM Docs d1 JOIN Docs d2 ON cos(d1, d2) >= tau
//                           WHERE category_filter(d1)
//
// which can be executed as filter-then-join or join-then-filter. The right
// choice depends on the join cardinality: at high τ the join output is tiny
// and running the (indexed) join first is cheap; at low τ the join explodes
// and filtering first wins.
//
// The optimizer-facing statistics object here is CardinalityProvider: a
// facade over the EstimationService that owns the corpus and its LSH index,
// answers EstimateJoin(τ) with a JoinSizeSummary (cardinality, selectivity,
// error bar), and serves repeated probes at nearby thresholds from its
// cache. The example costs both plans from the summaries and validates the
// choices against exact join sizes.

#include <iostream>

#include "vsj/eval/ground_truth.h"
#include "vsj/gen/workloads.h"
#include "vsj/service/cardinality_provider.h"
#include "vsj/util/table_printer.h"

namespace {

/// Toy cost model: filter costs 1 unit per input row; the downstream
/// operator costs 1 unit per surviving join pair. `selectivity` is the
/// fraction of documents passing the category filter.
struct PlanCosts {
  double filter_then_join;
  double join_then_filter;
};

PlanCosts CostPlans(double n, double estimated_join, double selectivity) {
  PlanCosts costs;
  // Filter first: scan n rows, then join the surviving fraction; pair count
  // scales with selectivity² for a self-join.
  costs.filter_then_join = n + estimated_join * selectivity * selectivity;
  // Join first: produce all join pairs, then filter each.
  costs.join_then_filter = estimated_join + n * selectivity;
  return costs;
}

}  // namespace

int main() {
  const size_t n = 8000;
  const double filter_selectivity = 0.1;

  vsj::VectorDataset docs = vsj::GenerateCorpus(vsj::DblpLikeConfig(n));
  vsj::GroundTruth truth(docs, vsj::SimilarityMeasure::kCosine,
                         vsj::StandardThresholds());

  // Long-lived statistics service: owns the corpus, builds the LSH index
  // across 4 threads, caches responses for repeated optimizer probes.
  vsj::EstimationServiceOptions service_options;
  service_options.k = 20;
  service_options.num_threads = 4;
  service_options.family_seed = 3;
  vsj::EstimationService service(std::move(docs), service_options);

  vsj::CardinalityProviderOptions provider_options;
  provider_options.estimator_name = "LSH-SS";
  provider_options.trials = 3;
  provider_options.seed = 99;
  vsj::CardinalityProvider provider(service, provider_options);

  vsj::TablePrinter report("Plan choice per similarity threshold "
                           "(filter selectivity 10%)");
  report.SetHeader({"tau", "estimated J", "±err", "true J", "chosen plan",
                    "oracle plan", "agreement"});

  int agreements = 0;
  int rows = 0;
  // One batched probe for the whole threshold sweep; the service fans the
  // requests out across its pool.
  const std::vector<vsj::JoinSizeSummary> summaries =
      provider.EstimateJoinBatch(vsj::StandardThresholds());
  for (const vsj::JoinSizeSummary& summary : summaries) {
    const auto true_j = static_cast<double>(truth.JoinSize(summary.tau));

    const PlanCosts est_costs = CostPlans(static_cast<double>(n),
                                          summary.cardinality,
                                          filter_selectivity);
    const PlanCosts true_costs =
        CostPlans(static_cast<double>(n), true_j, filter_selectivity);
    const bool pick_filter_first =
        est_costs.filter_then_join <= est_costs.join_then_filter;
    const bool oracle_filter_first =
        true_costs.filter_then_join <= true_costs.join_then_filter;
    agreements += pick_filter_first == oracle_filter_first ? 1 : 0;
    ++rows;

    report.AddRow({vsj::TablePrinter::Fmt(summary.tau, 1),
                   vsj::TablePrinter::Count(summary.cardinality),
                   vsj::TablePrinter::Count(summary.std_error),
                   vsj::TablePrinter::Count(true_j),
                   pick_filter_first ? "filter->join" : "join->filter",
                   oracle_filter_first ? "filter->join" : "join->filter",
                   pick_filter_first == oracle_filter_first ? "yes" : "NO"});
  }
  report.Print(std::cout);
  std::cout << "\nplan agreement with oracle: " << agreements << "/" << rows
            << " thresholds\n";

  // A second sweep over the same thresholds is answered from the cache —
  // the optimizer can re-cost plans for free.
  const auto cached = provider.EstimateJoinBatch(vsj::StandardThresholds());
  size_t cache_hits = 0;
  for (const auto& summary : cached) cache_hits += summary.from_cache ? 1 : 0;
  const vsj::EstimateCacheStats stats = service.cache().stats();
  std::cout << "second sweep: " << cache_hits << "/" << cached.size()
            << " summaries from cache (service hit rate "
            << vsj::TablePrinter::Pct(stats.HitRate()) << ")\n";
  return 0;
}
