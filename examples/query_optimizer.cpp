// Query-optimizer scenario: use join-size estimates to pick a plan.
//
// The paper's motivation (§1): a similarity join is a primitive operator,
// and the optimizer needs its output cardinality to order operators. This
// example models a two-step query
//
//     SELECT * FROM Docs d1 JOIN Docs d2 ON cos(d1, d2) >= tau
//                           WHERE category_filter(d1)
//
// which can be executed as filter-then-join or join-then-filter. The right
// choice depends on the join cardinality: at high τ the join output is tiny
// and running the (indexed) join first is cheap; at low τ the join explodes
// and filtering first wins. The example estimates J(τ) with LSH-SS, picks a
// plan with a simple cost model, and validates against the exact sizes.

#include <iostream>

#include "vsj/core/lsh_ss_estimator.h"
#include "vsj/eval/ground_truth.h"
#include "vsj/gen/workloads.h"
#include "vsj/lsh/lsh_table.h"
#include "vsj/lsh/simhash.h"
#include "vsj/util/table_printer.h"

namespace {

/// Toy cost model: filter costs 1 unit per input row; the downstream
/// operator costs 1 unit per surviving join pair. `selectivity` is the
/// fraction of documents passing the category filter.
struct PlanCosts {
  double filter_then_join;
  double join_then_filter;
};

PlanCosts CostPlans(double n, double estimated_join, double selectivity) {
  PlanCosts costs;
  // Filter first: scan n rows, then join the surviving fraction; pair count
  // scales with selectivity² for a self-join.
  costs.filter_then_join = n + estimated_join * selectivity * selectivity;
  // Join first: produce all join pairs, then filter each.
  costs.join_then_filter = estimated_join + n * selectivity;
  return costs;
}

}  // namespace

int main() {
  const size_t n = 8000;
  const double filter_selectivity = 0.1;

  vsj::VectorDataset docs = vsj::GenerateCorpus(vsj::DblpLikeConfig(n));
  vsj::SimHashFamily family(3);
  vsj::LshTable table(family, docs, 20);
  vsj::LshSsEstimator estimator(docs, table,
                                vsj::SimilarityMeasure::kCosine);
  vsj::GroundTruth truth(docs, vsj::SimilarityMeasure::kCosine,
                         vsj::StandardThresholds());

  vsj::TablePrinter report("Plan choice per similarity threshold "
                           "(filter selectivity 10%)");
  report.SetHeader({"tau", "estimated J", "true J", "chosen plan",
                    "oracle plan", "agreement"});

  int agreements = 0;
  int rows = 0;
  vsj::Rng rng(99);
  for (double tau : vsj::StandardThresholds()) {
    const double estimate = estimator.Estimate(tau, rng).estimate;
    const auto true_j = static_cast<double>(truth.JoinSize(tau));

    const PlanCosts est_costs =
        CostPlans(static_cast<double>(n), estimate, filter_selectivity);
    const PlanCosts true_costs =
        CostPlans(static_cast<double>(n), true_j, filter_selectivity);
    const bool pick_filter_first =
        est_costs.filter_then_join <= est_costs.join_then_filter;
    const bool oracle_filter_first =
        true_costs.filter_then_join <= true_costs.join_then_filter;
    agreements += pick_filter_first == oracle_filter_first ? 1 : 0;
    ++rows;

    report.AddRow({vsj::TablePrinter::Fmt(tau, 1),
                   vsj::TablePrinter::Count(estimate),
                   vsj::TablePrinter::Count(true_j),
                   pick_filter_first ? "filter->join" : "join->filter",
                   oracle_filter_first ? "filter->join" : "join->filter",
                   pick_filter_first == oracle_filter_first ? "yes" : "NO"});
  }
  report.Print(std::cout);
  std::cout << "\nplan agreement with oracle: " << agreements << "/" << rows
            << " thresholds\n";
  return 0;
}
