// vsjoin_server: the network serving daemon.
//
//   vsjoin_server --root snapshots/ [--port 7077] [--workers 2]
//                 [--max-resident 8] [--max-inflight 1024]
//                 [--default-timeout-ms 0] [--max-batch 64]
//                 [--k 20] [--tables 1] [--threads 1] [--seed 1]
//                 [--port-file PATH] [--debug-ops]
//                 [--metrics] [--metrics-json PATH]
//                 [--stats-interval MS] [--stats-json PATH]
//
// Serves every snapshot under --root as a tenant: <name>.vsjs restores a
// mutable streaming engine, <name>.vsjb mmaps a static dataset behind an
// EstimationService (see vsj/service/tenant_registry.h). Tenants open
// lazily on first request and at most --max-resident stay open (LRU, with
// dirty streaming tenants checkpointed back on eviction).
//
// The wire protocol is length-prefixed JSON (vsj/net/protocol.h); the
// paired load generator / request client is vsjoin_client. --k/--tables/
// --threads/--seed configure the engines of *static* tenants (streaming
// snapshots carry their own index recipe); the LSH family seed derives as
// seed ^ 0x5eed, matching vsjoin_estimate, so a static tenant served here
// answers bit-identically to `vsjoin_estimate --dataset <name>.vsjb
// --mmap --seed <seed> ...` with the same parameters.
//
// SIGTERM / SIGINT begin a graceful drain: no new connections or
// requests, everything admitted finishes and flushes, then the process
// writes dirty tenants back and exits. --port-file publishes the bound
// port (useful with --port 0) for scripts; --stats-interval prints the
// live per-tenant profiling table (requests, latency, batch size, queue
// depth) to stderr every MS milliseconds, and --stats-json appends one
// JSON line per tick.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "vsj/fault/fault.h"
#include "vsj/net/server.h"
#include "vsj/obs/obs.h"
#include "vsj/obs/stat_reporter.h"
#include "vsj/service/tenant_registry.h"

namespace {

struct Args {
  std::string root;
  uint16_t port = 7077;
  std::string port_file;
  size_t workers = 2;
  size_t max_resident = 8;
  size_t max_inflight = 1024;
  size_t max_batch = 64;
  uint64_t default_timeout_ms = 0;
  uint32_t max_frame_bytes = 1u << 20;
  bool debug_ops = false;

  // Static-tenant engine knobs (streaming snapshots carry their own).
  uint32_t k = 20;
  uint32_t tables = 1;
  size_t threads = 1;
  uint64_t seed = 1;

  bool metrics = false;
  std::string metrics_json_path;
  int stats_interval_ms = 0;
  std::string stats_json_path;
};

bool ParseU64(const char* token, uint64_t* out) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(token, &end, 10);
  if (end == token || *end != '\0') return false;
  *out = v;
  return true;
}

void Usage() {
  std::cerr
      << "usage: vsjoin_server --root DIR [--port N] [--port-file PATH]\n"
         "                     [--workers N] [--max-resident N]\n"
         "                     [--max-inflight N] [--max-batch N]\n"
         "                     [--default-timeout-ms N]\n"
         "                     [--max-frame-bytes N] [--debug-ops]\n"
         "                     [--k N] [--tables N] [--threads N] "
         "[--seed N]\n"
         "                     [--metrics] [--metrics-json PATH]\n"
         "                     [--stats-interval MS] [--stats-json PATH]\n";
}

bool ParseArgs(int argc, char** argv, Args* args) {
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    uint64_t u = 0;
    if (flag == "--root") {
      const char* v = next();
      if (v == nullptr) return false;
      args->root = v;
    } else if (flag == "--port") {
      const char* v = next();
      if (v == nullptr || !ParseU64(v, &u) || u > 65535) return false;
      args->port = static_cast<uint16_t>(u);
    } else if (flag == "--port-file") {
      const char* v = next();
      if (v == nullptr) return false;
      args->port_file = v;
    } else if (flag == "--workers") {
      const char* v = next();
      if (v == nullptr || !ParseU64(v, &u) || u == 0) return false;
      args->workers = u;
    } else if (flag == "--max-resident") {
      const char* v = next();
      if (v == nullptr || !ParseU64(v, &u)) return false;
      args->max_resident = u;
    } else if (flag == "--max-inflight") {
      const char* v = next();
      if (v == nullptr || !ParseU64(v, &u) || u == 0) return false;
      args->max_inflight = u;
    } else if (flag == "--max-batch") {
      const char* v = next();
      if (v == nullptr || !ParseU64(v, &u) || u == 0) return false;
      args->max_batch = u;
    } else if (flag == "--default-timeout-ms") {
      const char* v = next();
      if (v == nullptr || !ParseU64(v, &u)) return false;
      args->default_timeout_ms = u;
    } else if (flag == "--max-frame-bytes") {
      const char* v = next();
      if (v == nullptr || !ParseU64(v, &u) || u == 0) return false;
      args->max_frame_bytes = static_cast<uint32_t>(u);
    } else if (flag == "--debug-ops") {
      args->debug_ops = true;
    } else if (flag == "--k") {
      const char* v = next();
      if (v == nullptr || !ParseU64(v, &u) || u == 0) return false;
      args->k = static_cast<uint32_t>(u);
    } else if (flag == "--tables") {
      const char* v = next();
      if (v == nullptr || !ParseU64(v, &u) || u == 0) return false;
      args->tables = static_cast<uint32_t>(u);
    } else if (flag == "--threads") {
      const char* v = next();
      if (v == nullptr || !ParseU64(v, &u) || u == 0) return false;
      args->threads = u;
    } else if (flag == "--seed") {
      const char* v = next();
      if (v == nullptr || !ParseU64(v, &u)) return false;
      args->seed = u;
    } else if (flag == "--metrics") {
      args->metrics = true;
    } else if (flag == "--metrics-json") {
      const char* v = next();
      if (v == nullptr) return false;
      args->metrics_json_path = v;
    } else if (flag == "--stats-interval") {
      const char* v = next();
      if (v == nullptr || !ParseU64(v, &u) || u == 0) return false;
      args->stats_interval_ms = static_cast<int>(u);
    } else if (flag == "--stats-json") {
      const char* v = next();
      if (v == nullptr) return false;
      args->stats_json_path = v;
    } else if (flag == "--help" || flag == "-h") {
      return false;
    } else {
      std::cerr << "unknown flag '" << flag << "'\n";
      return false;
    }
  }
  return !args->root.empty();
}

vsj::net::Server* g_server = nullptr;

// Only async-signal-safe work here: BeginDrain is an atomic store plus an
// eventfd write.
void HandleSignal(int) {
  if (g_server != nullptr) g_server->BeginDrain();
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!ParseArgs(argc, argv, &args)) {
    Usage();
    return 2;
  }

  const bool want_metrics = args.metrics || !args.metrics_json_path.empty() ||
                            args.stats_interval_ms > 0 ||
                            !args.stats_json_path.empty();
  if (want_metrics) {
    if (!VSJ_METRICS_COMPILED) {
      std::cerr << "warning: built with VSJ_METRICS=OFF; metrics flags will "
                   "record nothing\n";
    }
    vsj::obs::EnableMetrics(true);
  }

  // Operators (and the crash drill) arm fault points via VSJ_FAULTS; a
  // server that will fail on purpose must say so in its log, and a
  // VSJ_FAULT=OFF build must not let a drill believe it armed anything.
  if (std::getenv("VSJ_FAULTS") != nullptr) {
    if (!VSJ_FAULT_COMPILED) {
      std::cerr << "warning: built with VSJ_FAULT=OFF; VSJ_FAULTS is "
                   "ignored and no faults will fire\n";
    } else if (vsj::fault::Enabled()) {
      const std::vector<std::string> points = vsj::fault::ArmedPoints();
      std::cerr << "vsjoin_server: fault injection armed at "
                << points.size() << " point(s):";
      for (const std::string& point : points) std::cerr << " " << point;
      std::cerr << "\n";
    }
  }

  vsj::TenantRegistryOptions registry_options;
  registry_options.root = args.root;
  registry_options.max_resident = args.max_resident;
  registry_options.static_options.k = args.k;
  registry_options.static_options.num_tables = args.tables;
  registry_options.static_options.num_threads = args.threads;
  registry_options.static_options.family_seed = args.seed ^ 0x5eedULL;
  registry_options.streaming_options.num_threads = args.threads;
  vsj::TenantRegistry registry(registry_options);
  if (registry.swept_tmp_files() > 0) {
    std::cerr << "vsjoin_server: swept " << registry.swept_tmp_files()
              << " orphaned tmp file(s) from " << args.root << "\n";
  }

  vsj::net::ServerOptions server_options;
  server_options.port = args.port;
  server_options.num_workers = args.workers;
  server_options.max_inflight = args.max_inflight;
  server_options.max_batch = args.max_batch;
  server_options.default_timeout_ms = args.default_timeout_ms;
  server_options.max_frame_bytes = args.max_frame_bytes;
  server_options.enable_debug_ops = args.debug_ops;
  server_options.registry = &registry;
  vsj::net::Server server(server_options);

  const vsj::IoStatus status = server.Start();
  if (!status.ok()) {
    std::cerr << "vsjoin_server: " << status.ToString() << "\n";
    return 1;
  }
  if (!args.port_file.empty()) {
    std::ofstream out(args.port_file, std::ios::trunc);
    out << server.port() << "\n";
    if (!out) {
      std::cerr << "vsjoin_server: cannot write " << args.port_file << "\n";
      return 1;
    }
  }
  std::cerr << "vsjoin_server: serving " << args.root << " on port "
            << server.port() << " (" << args.workers << " workers, cap "
            << args.max_resident << " resident tenants)\n";

  g_server = &server;
  std::signal(SIGTERM, HandleSignal);
  std::signal(SIGINT, HandleSignal);
  // A peer vanishing mid-write must surface as a write error, not kill
  // the process.
  std::signal(SIGPIPE, SIG_IGN);

  std::unique_ptr<vsj::obs::StatReporter> reporter;
  if (args.stats_interval_ms > 0 || !args.stats_json_path.empty()) {
    vsj::obs::StatReporterOptions reporter_options;
    reporter_options.interval_ms =
        args.stats_interval_ms > 0 ? args.stats_interval_ms : 1000;
    reporter_options.out = args.stats_interval_ms > 0 ? &std::cerr : nullptr;
    reporter_options.jsonl_path = args.stats_json_path;
    reporter = std::make_unique<vsj::obs::StatReporter>(reporter_options);
  }

  server.WaitUntilStopped();
  g_server = nullptr;
  if (reporter != nullptr) reporter->Stop();

  // Mutations applied over the wire persist across restarts.
  const vsj::IoStatus flush = registry.Flush();
  if (!flush.ok()) {
    std::cerr << "vsjoin_server: write-back failed: " << flush.ToString()
              << "\n";
    return 1;
  }

  if (args.metrics) {
    vsj::obs::PrintMetricsTable(vsj::obs::MetricRegistry::Global().Snapshot(),
                                nullptr, std::cerr, "vsjoin_server");
  }
  if (!args.metrics_json_path.empty()) {
    std::string error;
    if (!vsj::obs::WriteMetricsJson(
            vsj::obs::MetricRegistry::Global().Snapshot(),
            args.metrics_json_path, &error)) {
      std::cerr << "vsjoin_server: " << error << "\n";
      return 1;
    }
  }
  std::cerr << "vsjoin_server: drained\n";
  return 0;
}
