// vsjoin_client: request client and load generator for vsjoin_server.
//
// Request mode (default) — send JSON request lines, print responses:
//
//   vsjoin_client --port 7077 --ops requests.jsonl
//   echo '{"op":"estimate","tenant":"wiki","tau":0.8}' |
//       vsjoin_client --port 7077
//
// Each input line is framed and sent on one connection, strictly in
// order, one at a time; each response payload prints as one stdout line.
// The CI loopback smoke test drives this mode and diffs the output
// against in-process vsjoin_estimate goldens (the responses are
// bit-identical by the shared-stream batching contract).
//
// Load mode (--load) — sustained traffic with latency accounting:
//
//   vsjoin_client --port 7077 --load --connections 64 --duration-s 10
//       --tenants churn:3,archive:1 --taus 0.7,0.8,0.9 --trials 1
//       [--rate 20000] [--pipeline 4] [--json out.json]
//
// Opens --connections sockets driven by one nonblocking poll loop. With
// --rate R, arrivals are open-loop Poisson at R requests/s aggregate
// (arrival times don't depend on responses, so queueing delay is
// measured honestly, not gated by it); connections are picked round-
// robin. With --rate 0 the loop runs closed-loop: every connection keeps
// --pipeline requests outstanding, which measures peak throughput.
// Tenants are drawn from the weighted --tenants mix and τ round-robins
// through --taus, so server-side caching and cross-connection batching
// see a realistic mostly-repeating workload. The summary (stdout table,
// one JSON object with --json) reports throughput, error counts by code,
// and the client-observed latency distribution (p50/p90/p99/max).

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "vsj/net/json.h"
#include "vsj/net/wire.h"
#include "vsj/obs/metrics.h"
#include "vsj/util/rng.h"

namespace {

struct TenantWeight {
  std::string name;
  double weight = 1.0;
};

struct Args {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  std::string ops_path;  // request mode input; empty = stdin

  bool load = false;
  size_t connections = 8;
  double duration_s = 5.0;
  double rate = 0.0;  // open-loop aggregate RPS; 0 = closed loop
  size_t pipeline = 4;
  std::vector<TenantWeight> tenants;
  std::vector<double> taus = {0.8};
  size_t trials = 1;
  std::string estimator = "LSH-SS";
  uint64_t req_seed = 1;
  uint64_t mix_seed = 42;
  uint64_t timeout_ms = 0;
  std::string json_path;

  /// Request mode: extra attempts per request after a transport failure
  /// (connection reset/refused) or a response the server flagged
  /// "retryable":true. 0 = fail fast (the pre-retry behavior).
  uint64_t retries = 0;
  /// Base of the jittered exponential backoff between attempts.
  uint64_t backoff_ms = 100;
};

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

bool ParseU64(const char* token, uint64_t* out) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(token, &end, 10);
  if (end == token || *end != '\0') return false;
  *out = v;
  return true;
}

bool ParseDoubleArg(const char* token, double* out) {
  char* end = nullptr;
  const double v = std::strtod(token, &end);
  if (end == token || *end != '\0') return false;
  *out = v;
  return true;
}

bool ParseTenants(const std::string& spec, std::vector<TenantWeight>* out) {
  std::stringstream stream(spec);
  std::string item;
  while (std::getline(stream, item, ',')) {
    if (item.empty()) return false;
    TenantWeight tw;
    const size_t colon = item.find(':');
    if (colon == std::string::npos) {
      tw.name = item;
    } else {
      tw.name = item.substr(0, colon);
      if (!ParseDoubleArg(item.c_str() + colon + 1, &tw.weight) ||
          tw.weight <= 0.0) {
        return false;
      }
    }
    out->push_back(std::move(tw));
  }
  return !out->empty();
}

bool ParseTaus(const std::string& spec, std::vector<double>* out) {
  out->clear();
  std::stringstream stream(spec);
  std::string item;
  while (std::getline(stream, item, ',')) {
    double tau = 0.0;
    if (!ParseDoubleArg(item.c_str(), &tau)) return false;
    out->push_back(tau);
  }
  return !out->empty();
}

void Usage() {
  std::cerr
      << "usage: vsjoin_client --port N [--host H] [--ops FILE]\n"
         "                     [--retries N] [--backoff-ms N]\n"
         "       vsjoin_client --port N --load [--connections N]\n"
         "                     [--duration-s S] [--rate RPS] [--pipeline N]\n"
         "                     [--tenants a:3,b:1] [--taus 0.7,0.8]\n"
         "                     [--trials N] [--estimator NAME] [--seed N]\n"
         "                     [--timeout-ms N] [--json PATH]\n";
}

bool ParseArgs(int argc, char** argv, Args* args) {
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    uint64_t u = 0;
    if (flag == "--host") {
      const char* v = next();
      if (v == nullptr) return false;
      args->host = v;
    } else if (flag == "--port") {
      const char* v = next();
      if (v == nullptr || !ParseU64(v, &u) || u == 0 || u > 65535)
        return false;
      args->port = static_cast<uint16_t>(u);
    } else if (flag == "--ops") {
      const char* v = next();
      if (v == nullptr) return false;
      args->ops_path = v;
    } else if (flag == "--load") {
      args->load = true;
    } else if (flag == "--connections") {
      const char* v = next();
      if (v == nullptr || !ParseU64(v, &u) || u == 0 || u > 4096)
        return false;
      args->connections = u;
    } else if (flag == "--duration-s") {
      const char* v = next();
      if (v == nullptr || !ParseDoubleArg(v, &args->duration_s) ||
          args->duration_s <= 0) {
        return false;
      }
    } else if (flag == "--rate") {
      const char* v = next();
      if (v == nullptr || !ParseDoubleArg(v, &args->rate) || args->rate < 0)
        return false;
    } else if (flag == "--pipeline") {
      const char* v = next();
      if (v == nullptr || !ParseU64(v, &u) || u == 0) return false;
      args->pipeline = u;
    } else if (flag == "--tenants") {
      const char* v = next();
      if (v == nullptr || !ParseTenants(v, &args->tenants)) return false;
    } else if (flag == "--taus") {
      const char* v = next();
      if (v == nullptr || !ParseTaus(v, &args->taus)) return false;
    } else if (flag == "--trials") {
      const char* v = next();
      if (v == nullptr || !ParseU64(v, &u) || u == 0) return false;
      args->trials = u;
    } else if (flag == "--estimator") {
      const char* v = next();
      if (v == nullptr) return false;
      args->estimator = v;
    } else if (flag == "--seed") {
      const char* v = next();
      if (v == nullptr || !ParseU64(v, &args->req_seed)) return false;
    } else if (flag == "--mix-seed") {
      const char* v = next();
      if (v == nullptr || !ParseU64(v, &args->mix_seed)) return false;
    } else if (flag == "--timeout-ms") {
      const char* v = next();
      if (v == nullptr || !ParseU64(v, &args->timeout_ms)) return false;
    } else if (flag == "--retries") {
      const char* v = next();
      if (v == nullptr || !ParseU64(v, &args->retries)) return false;
    } else if (flag == "--backoff-ms") {
      const char* v = next();
      if (v == nullptr || !ParseU64(v, &args->backoff_ms) ||
          args->backoff_ms > 60'000) {
        return false;
      }
    } else if (flag == "--json") {
      const char* v = next();
      if (v == nullptr) return false;
      args->json_path = v;
    } else if (flag == "--help" || flag == "-h") {
      return false;
    } else {
      std::cerr << "unknown flag '" << flag << "'\n";
      return false;
    }
  }
  return args->port != 0;
}

int Connect(const std::string& host, uint16_t port, bool nonblocking) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return -1;
  struct sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1 ||
      ::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  if (nonblocking) {
    // Switch after the blocking connect so startup stays simple.
    ::fcntl(fd, F_SETFL, O_NONBLOCK);
  }
  return fd;
}

// ----------------------------------------------------------- request mode

/// Jittered exponential backoff before retry `attempt` (1-based):
/// backoff_ms · 2^(attempt-1), capped at 2^10, scaled by a uniform draw
/// in [0.5, 1.5) so synchronized clients desynchronize.
void BackoffSleep(const Args& args, uint64_t attempt, vsj::Rng* rng) {
  const uint64_t shift = std::min<uint64_t>(attempt - 1, 10);
  const double base =
      static_cast<double>(args.backoff_ms) * static_cast<double>(1ull << shift);
  const double jittered = base * (0.5 + rng->NextDouble());
  std::this_thread::sleep_for(
      std::chrono::microseconds(static_cast<int64_t>(jittered * 1e3)));
}

int RunRequestMode(const Args& args) {
  std::ifstream file;
  std::istream* in = &std::cin;
  if (!args.ops_path.empty()) {
    file.open(args.ops_path);
    if (!file) {
      std::cerr << "vsjoin_client: cannot open " << args.ops_path << "\n";
      return 1;
    }
    in = &file;
  }

  vsj::Rng backoff_rng(args.mix_seed);
  int fd = -1;
  vsj::net::FrameDecoder decoder;
  uint64_t retransmits = 0;

  // (Re)establishes the connection, itself retried with backoff: a
  // server restarting after a crash briefly refuses connections.
  const auto connect_with_retry = [&]() -> bool {
    for (uint64_t attempt = 0;; ++attempt) {
      fd = Connect(args.host, args.port, /*nonblocking=*/false);
      if (fd >= 0) {
        decoder = vsj::net::FrameDecoder();  // no carry-over bytes
        return true;
      }
      if (attempt >= args.retries) return false;
      BackoffSleep(args, attempt + 1, &backoff_rng);
    }
  };

  if (!connect_with_retry()) {
    std::cerr << "vsjoin_client: cannot connect to " << args.host << ":"
              << args.port << "\n";
    return 1;
  }

  std::string line;
  int failures = 0;
  while (std::getline(*in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::string frame;
    vsj::net::AppendFrame(&frame, line);

    // One attempt = send the frame, read exactly one response. A
    // transport failure anywhere in the attempt tears the connection
    // down and (with retries left) reconnects and resends — estimates
    // are deterministic and read-only, so a replayed request returns the
    // identical response and exactly one line prints either way.
    bool delivered = false;
    std::string response;
    for (uint64_t attempt = 0; attempt <= args.retries; ++attempt) {
      if (attempt > 0) {
        ++retransmits;
        BackoffSleep(args, attempt, &backoff_rng);
      }
      if (fd < 0 && !connect_with_retry()) break;

      bool transport_ok = true;
      size_t sent = 0;
      while (sent < frame.size()) {
        const ssize_t n =
            ::write(fd, frame.data() + sent, frame.size() - sent);
        if (n <= 0) {
          transport_ok = false;
          break;
        }
        sent += static_cast<size_t>(n);
      }
      std::string_view payload;
      if (transport_ok) {
        while (decoder.Next(&payload) !=
               vsj::net::FrameDecoder::Status::kFrame) {
          char buffer[65536];
          const ssize_t n = ::read(fd, buffer, sizeof(buffer));
          if (n <= 0) {
            transport_ok = false;
            break;
          }
          decoder.Feed(std::string_view(buffer, static_cast<size_t>(n)));
        }
      }
      if (!transport_ok) {
        ::close(fd);
        fd = -1;
        if (attempt == args.retries) {
          std::cerr << "vsjoin_client: connection lost\n";
        }
        continue;
      }

      // A server-side error flagged retryable (overloaded, timeout,
      // shutting_down) is retried on the same connection; anything else
      // is the final answer.
      if (attempt < args.retries &&
          payload.find("\"ok\":false") != std::string_view::npos &&
          payload.find("\"retryable\":true") != std::string_view::npos) {
        continue;
      }
      response = std::string(payload);
      delivered = true;
      break;
    }

    if (!delivered) {
      if (fd >= 0) ::close(fd);
      if (retransmits > 0) {
        std::cerr << "vsjoin_client: " << retransmits
                  << " retransmission(s) before giving up\n";
      }
      return 1;
    }
    std::cout << response << "\n";
    if (response.find("\"ok\":false") != std::string::npos) ++failures;
  }
  if (fd >= 0) ::close(fd);
  if (retransmits > 0) {
    std::cerr << "vsjoin_client: recovered via " << retransmits
              << " retransmission(s)\n";
  }
  return failures == 0 ? 0 : 3;
}

// -------------------------------------------------------------- load mode

struct LoadConn {
  int fd = -1;
  std::string out;
  size_t out_offset = 0;
  vsj::net::FrameDecoder decoder;
  size_t outstanding = 0;
};

struct LoadStats {
  uint64_t sent = 0;
  uint64_t received = 0;
  uint64_t ok = 0;
  std::map<std::string, uint64_t> errors;          // error code → count
  std::map<std::string, uint64_t> tenant_requests;  // tenant → sent
};

int RunLoadMode(const Args& args) {
  std::vector<TenantWeight> tenants = args.tenants;
  if (tenants.empty()) {
    std::cerr << "vsjoin_client: --load needs --tenants\n";
    return 2;
  }
  double total_weight = 0.0;
  for (const TenantWeight& tw : tenants) total_weight += tw.weight;

  std::vector<LoadConn> conns(args.connections);
  for (LoadConn& conn : conns) {
    conn.fd = Connect(args.host, args.port, /*nonblocking=*/true);
    if (conn.fd < 0) {
      std::cerr << "vsjoin_client: cannot connect to " << args.host << ":"
                << args.port << "\n";
      return 1;
    }
  }

  // Pre-encode the invariant part of every (tenant, tau) request so the
  // send path is a couple of appends, not a serializer run.
  struct Variant {
    std::string prefix;  // {"id":
    std::string suffix;  // ,"op":"estimate",...}
  };
  std::vector<std::vector<Variant>> variants(tenants.size());
  for (size_t t = 0; t < tenants.size(); ++t) {
    for (const double tau : args.taus) {
      Variant variant;
      variant.prefix = "{\"id\":";
      std::string& s = variant.suffix;
      s += ",\"op\":\"estimate\",\"tenant\":";
      vsj::net::JsonValue::AppendQuoted(&s, tenants[t].name);
      s += ",\"estimator\":";
      vsj::net::JsonValue::AppendQuoted(&s, args.estimator);
      s += ",\"tau\":";
      vsj::net::JsonValue::AppendNumber(&s, tau);
      s += ",\"trials\":" + std::to_string(args.trials);
      s += ",\"seed\":" + std::to_string(args.req_seed);
      if (args.timeout_ms > 0) {
        s += ",\"timeout_ms\":" + std::to_string(args.timeout_ms);
      }
      s += "}";
      variants[t].push_back(std::move(variant));
    }
  }

  vsj::Rng rng(args.mix_seed);
  auto histogram = std::make_unique<vsj::obs::Histogram>();
  std::unordered_map<uint64_t, uint64_t> send_time_ns;
  send_time_ns.reserve(1 << 16);
  LoadStats stats;
  uint64_t next_id = 1;
  size_t round_robin = 0;
  size_t tau_cursor = 0;

  const uint64_t start_ns = NowNs();
  const uint64_t end_ns =
      start_ns + static_cast<uint64_t>(args.duration_s * 1e9);
  double next_arrival_ns = static_cast<double>(start_ns);

  const auto pick_tenant = [&]() -> size_t {
    double draw = rng.NextDouble() * total_weight;
    for (size_t t = 0; t < tenants.size(); ++t) {
      draw -= tenants[t].weight;
      if (draw <= 0.0) return t;
    }
    return tenants.size() - 1;
  };

  const auto enqueue_request = [&](LoadConn& conn) {
    const size_t t = pick_tenant();
    const Variant& variant =
        variants[t][tau_cursor++ % variants[t].size()];
    const uint64_t id = next_id++;
    std::string payload = variant.prefix;
    payload += std::to_string(id);
    payload += variant.suffix;
    vsj::net::AppendFrame(&conn.out, payload);
    send_time_ns.emplace(id, NowNs());
    ++conn.outstanding;
    ++stats.sent;
    ++stats.tenant_requests[tenants[t].name];
  };

  const auto flush_conn = [&](LoadConn& conn) {
    while (conn.out_offset < conn.out.size()) {
      const ssize_t n = ::write(conn.fd, conn.out.data() + conn.out_offset,
                                conn.out.size() - conn.out_offset);
      if (n > 0) {
        conn.out_offset += static_cast<size_t>(n);
        continue;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
      return false;
    }
    conn.out.clear();
    conn.out_offset = 0;
    return true;
  };

  const auto read_conn = [&](LoadConn& conn) {
    char buffer[65536];
    while (true) {
      const ssize_t n = ::read(conn.fd, buffer, sizeof(buffer));
      if (n > 0) {
        conn.decoder.Feed(std::string_view(buffer, static_cast<size_t>(n)));
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      return false;
    }
    std::string_view payload;
    while (conn.decoder.Next(&payload) ==
           vsj::net::FrameDecoder::Status::kFrame) {
      ++stats.received;
      if (conn.outstanding > 0) --conn.outstanding;
      vsj::net::JsonValue doc;
      std::string error;
      if (!ParseJson(payload, &doc, &error)) {
        ++stats.errors["unparseable"];
        continue;
      }
      const vsj::net::JsonValue* id = doc.Find("id");
      if (id != nullptr && id->is_number()) {
        auto it = send_time_ns.find(static_cast<uint64_t>(id->AsNumber()));
        if (it != send_time_ns.end()) {
          histogram->Record(NowNs() - it->second);
          send_time_ns.erase(it);
        }
      }
      const vsj::net::JsonValue* ok = doc.Find("ok");
      if (ok != nullptr && ok->is_bool() && ok->AsBool()) {
        ++stats.ok;
      } else {
        const vsj::net::JsonValue* code = doc.Find("error");
        ++stats.errors[code != nullptr && code->is_string()
                           ? code->AsString()
                           : "unknown"];
      }
    }
    return true;
  };

  bool sending = true;
  std::vector<struct pollfd> pollfds(conns.size());
  while (true) {
    const uint64_t now = NowNs();
    if (now >= end_ns) sending = false;

    if (sending) {
      if (args.rate > 0.0) {
        // Open loop: Poisson arrivals, round-robin over connections —
        // arrival times never wait for responses.
        while (static_cast<double>(now) >= next_arrival_ns) {
          enqueue_request(conns[round_robin++ % conns.size()]);
          const double u = rng.NextDouble();
          next_arrival_ns +=
              -std::log(1.0 - u) * (1e9 / args.rate);
        }
      } else {
        // Closed loop: keep every connection's pipeline full.
        for (LoadConn& conn : conns) {
          while (conn.outstanding < args.pipeline) enqueue_request(conn);
        }
      }
    }

    size_t total_outstanding = 0;
    for (size_t i = 0; i < conns.size(); ++i) {
      pollfds[i].fd = conns[i].fd;
      pollfds[i].events = POLLIN;
      if (conns[i].out_offset < conns[i].out.size()) {
        pollfds[i].events |= POLLOUT;
      }
      total_outstanding += conns[i].outstanding;
    }
    if (!sending && total_outstanding == 0) break;

    int timeout_ms = 100;
    if (sending && args.rate > 0.0) {
      const double wait_ns =
          next_arrival_ns - static_cast<double>(NowNs());
      timeout_ms = wait_ns <= 0
                       ? 0
                       : std::min(100, static_cast<int>(wait_ns / 1e6) + 1);
    }
    ::poll(pollfds.data(), pollfds.size(), timeout_ms);
    bool connection_lost = false;
    for (size_t i = 0; i < conns.size(); ++i) {
      if (pollfds[i].revents & POLLOUT) {
        if (!flush_conn(conns[i])) connection_lost = true;
      }
      if (pollfds[i].revents & (POLLIN | POLLHUP | POLLERR)) {
        if (!read_conn(conns[i])) connection_lost = true;
      }
      // Newly enqueued bytes may never have hit the socket yet.
      if (conns[i].out_offset < conns[i].out.size()) {
        if (!flush_conn(conns[i])) connection_lost = true;
      }
    }
    if (connection_lost) {
      std::cerr << "vsjoin_client: a connection was lost; aborting run\n";
      break;
    }
    if (!sending && NowNs() > end_ns + 5'000'000'000ull) {
      std::cerr << "vsjoin_client: timed out waiting for "
                << total_outstanding << " responses\n";
      break;
    }
  }
  const uint64_t stop_ns = NowNs();
  for (LoadConn& conn : conns) ::close(conn.fd);

  const double elapsed_s =
      static_cast<double>(stop_ns - start_ns) / 1e9;
  const double qps =
      elapsed_s > 0 ? static_cast<double>(stats.received) / elapsed_s : 0;
  const vsj::obs::HistogramSnapshot latency = histogram->Snapshot();

  std::printf("connections      %zu\n", args.connections);
  std::printf("sent             %llu\n",
              static_cast<unsigned long long>(stats.sent));
  std::printf("received         %llu\n",
              static_cast<unsigned long long>(stats.received));
  std::printf("ok               %llu\n",
              static_cast<unsigned long long>(stats.ok));
  std::printf("elapsed_s        %.3f\n", elapsed_s);
  std::printf("throughput_rps   %.1f\n", qps);
  std::printf("latency_p50_us   %.1f\n",
              static_cast<double>(latency.ValueAtPercentile(50)) / 1e3);
  std::printf("latency_p90_us   %.1f\n",
              static_cast<double>(latency.ValueAtPercentile(90)) / 1e3);
  std::printf("latency_p99_us   %.1f\n",
              static_cast<double>(latency.ValueAtPercentile(99)) / 1e3);
  std::printf("latency_max_us   %.1f\n",
              static_cast<double>(latency.max) / 1e3);
  for (const auto& [tenant, count] : stats.tenant_requests) {
    std::printf("tenant.%s        %llu\n", tenant.c_str(),
                static_cast<unsigned long long>(count));
  }
  for (const auto& [code, count] : stats.errors) {
    std::printf("error.%s         %llu\n", code.c_str(),
                static_cast<unsigned long long>(count));
  }

  if (!args.json_path.empty()) {
    std::ofstream out(args.json_path, std::ios::trunc);
    vsj::net::JsonValue doc = vsj::net::JsonValue::Object();
    doc.Set("connections",
            vsj::net::JsonValue::Number(
                static_cast<double>(args.connections)));
    doc.Set("sent", vsj::net::JsonValue::Number(
                        static_cast<double>(stats.sent)));
    doc.Set("received", vsj::net::JsonValue::Number(
                            static_cast<double>(stats.received)));
    doc.Set("ok",
            vsj::net::JsonValue::Number(static_cast<double>(stats.ok)));
    doc.Set("elapsed_s", vsj::net::JsonValue::Number(elapsed_s));
    doc.Set("throughput_rps", vsj::net::JsonValue::Number(qps));
    doc.Set("latency_p50_us",
            vsj::net::JsonValue::Number(
                static_cast<double>(latency.ValueAtPercentile(50)) / 1e3));
    doc.Set("latency_p90_us",
            vsj::net::JsonValue::Number(
                static_cast<double>(latency.ValueAtPercentile(90)) / 1e3));
    doc.Set("latency_p99_us",
            vsj::net::JsonValue::Number(
                static_cast<double>(latency.ValueAtPercentile(99)) / 1e3));
    vsj::net::JsonValue errors = vsj::net::JsonValue::Object();
    for (const auto& [code, count] : stats.errors) {
      errors.Set(code, vsj::net::JsonValue::Number(
                           static_cast<double>(count)));
    }
    doc.Set("errors", std::move(errors));
    vsj::net::JsonValue per_tenant = vsj::net::JsonValue::Object();
    for (const auto& [tenant, count] : stats.tenant_requests) {
      per_tenant.Set(tenant, vsj::net::JsonValue::Number(
                                 static_cast<double>(count)));
    }
    doc.Set("tenant_requests", std::move(per_tenant));
    out << doc.Serialize() << "\n";
    if (!out) {
      std::cerr << "vsjoin_client: cannot write " << args.json_path << "\n";
      return 1;
    }
  }
  // Any transport-level shortfall is an error exit; protocol errors are
  // reported in the table/JSON but don't fail the run (load tests push
  // the server into overload on purpose).
  return stats.received == stats.sent ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!ParseArgs(argc, argv, &args)) {
    Usage();
    return 2;
  }
  return args.load ? RunLoadMode(args) : RunRequestMode(args);
}
