// vsjoin_estimate: command-line join-size estimation.
//
//   vsjoin_estimate --dataset corpus.vsjd --tau 0.8 [--estimator LSH-SS]
//                   [--k 20] [--tables 1] [--trials 1] [--seed 1]
//   vsjoin_estimate --synthetic dblp --n 20000 --tau 0.8 [...]
//
// Loads a persisted dataset (vsj/io) or generates a synthetic corpus, builds
// the LSH index, and prints the estimate (mean over --trials runs). With
// --exact it also computes the exact join size for comparison (quadratic in
// the worst case; intended for small datasets).

#include <cstring>
#include <iostream>
#include <string>

#include "vsj/core/estimator_registry.h"
#include "vsj/eval/experiment.h"
#include "vsj/gen/workloads.h"
#include "vsj/io/dataset_io.h"
#include "vsj/join/brute_force_join.h"
#include "vsj/lsh/simhash.h"

namespace {

struct Args {
  std::string dataset_path;
  std::string synthetic;  // dblp | nyt | pubmed
  std::string estimator = "LSH-SS";
  size_t n = 20000;
  double tau = 0.8;
  uint32_t k = 20;
  uint32_t tables = 1;
  size_t trials = 1;
  uint64_t seed = 1;
  bool exact = false;
};

bool ParseArgs(int argc, char** argv, Args* args) {
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&](const char* name) -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "missing value for " << name << "\n";
        return nullptr;
      }
      return argv[++i];
    };
    if (flag == "--dataset") {
      const char* v = next("--dataset");
      if (!v) return false;
      args->dataset_path = v;
    } else if (flag == "--synthetic") {
      const char* v = next("--synthetic");
      if (!v) return false;
      args->synthetic = v;
    } else if (flag == "--estimator") {
      const char* v = next("--estimator");
      if (!v) return false;
      args->estimator = v;
    } else if (flag == "--n") {
      const char* v = next("--n");
      if (!v) return false;
      args->n = std::strtoull(v, nullptr, 10);
    } else if (flag == "--tau") {
      const char* v = next("--tau");
      if (!v) return false;
      args->tau = std::strtod(v, nullptr);
    } else if (flag == "--k") {
      const char* v = next("--k");
      if (!v) return false;
      args->k = static_cast<uint32_t>(std::strtoul(v, nullptr, 10));
    } else if (flag == "--tables") {
      const char* v = next("--tables");
      if (!v) return false;
      args->tables = static_cast<uint32_t>(std::strtoul(v, nullptr, 10));
    } else if (flag == "--trials") {
      const char* v = next("--trials");
      if (!v) return false;
      args->trials = std::strtoull(v, nullptr, 10);
    } else if (flag == "--seed") {
      const char* v = next("--seed");
      if (!v) return false;
      args->seed = std::strtoull(v, nullptr, 10);
    } else if (flag == "--exact") {
      args->exact = true;
    } else if (flag == "--help" || flag == "-h") {
      return false;
    } else {
      std::cerr << "unknown flag: " << flag << "\n";
      return false;
    }
  }
  return !args->dataset_path.empty() || !args->synthetic.empty();
}

void PrintUsage() {
  std::cerr
      << "usage: vsjoin_estimate (--dataset FILE | --synthetic "
         "dblp|nyt|pubmed) --tau T\n"
         "       [--estimator NAME] [--n N] [--k K] [--tables L]\n"
         "       [--trials R] [--seed S] [--exact]\n"
         "estimators: LSH-SS LSH-SS(D) RS(pop) RS(cross) LSH-S J_U LC\n"
         "            Adaptive Bifocal LSH-SS(median) LSH-SS(vbucket)\n";
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!ParseArgs(argc, argv, &args)) {
    PrintUsage();
    return 2;
  }

  vsj::VectorDataset dataset;
  if (!args.dataset_path.empty()) {
    if (!vsj::LoadDatasetFromFile(args.dataset_path, &dataset)) {
      std::cerr << "failed to load dataset from " << args.dataset_path
                << "\n";
      return 1;
    }
  } else if (args.synthetic == "dblp") {
    dataset = vsj::GenerateCorpus(vsj::DblpLikeConfig(args.n, args.seed));
  } else if (args.synthetic == "nyt") {
    dataset = vsj::GenerateCorpus(vsj::NytLikeConfig(args.n, args.seed));
  } else if (args.synthetic == "pubmed") {
    dataset = vsj::GenerateCorpus(vsj::PubmedLikeConfig(args.n, args.seed));
  } else {
    std::cerr << "unknown synthetic corpus: " << args.synthetic << "\n";
    return 2;
  }

  const vsj::DatasetStats stats = dataset.ComputeStats();
  std::cerr << "dataset: n = " << stats.num_vectors
            << ", avg features = " << stats.avg_features << "\n";
  if (stats.num_vectors < 2) {
    std::cerr << "need at least two vectors\n";
    return 1;
  }

  vsj::SimHashFamily family(args.seed ^ 0x5eedULL);
  vsj::LshIndex index(family, dataset, args.k, args.tables);

  vsj::EstimatorContext context;
  context.dataset = &dataset;
  context.index = &index;
  auto estimator = vsj::CreateEstimator(args.estimator, context);

  const vsj::TrialSeries series =
      vsj::RunTrials(*estimator, args.tau, args.trials, args.seed);
  double mean = 0.0;
  for (double e : series.estimates) mean += e;
  mean /= static_cast<double>(series.estimates.size());

  std::cout << "estimate(" << args.estimator << ", tau=" << args.tau
            << ") = " << mean;
  if (args.trials > 1) {
    std::cout << "  (mean of " << args.trials << " trials, "
              << series.num_unguaranteed << " unguaranteed)";
  }
  std::cout << "\n";

  if (args.exact) {
    const uint64_t exact = vsj::BruteForceJoinSize(
        dataset, vsj::SimilarityMeasure::kCosine, args.tau);
    std::cout << "exact = " << exact << "\n";
  }
  return 0;
}
