// vsjoin_estimate: command-line join-size estimation.
//
//   vsjoin_estimate --dataset corpus.vsjd --tau 0.8 [--estimator LSH-SS]
//                   [--k 20] [--tables 1] [--trials 1] [--seed 1]
//   vsjoin_estimate --synthetic dblp --n 20000 --tau 0.8 [...]
//   vsjoin_estimate --synthetic dblp --threads 4 --batch-taus 0.7,0.8,0.9
//   vsjoin_estimate --dataset corpus.vsjd --stream ops.txt
//
// Loads a persisted dataset (vsj/io) or generates a synthetic corpus and
// routes every estimate through the EstimationService: the LSH index is
// built in parallel with --threads workers, the τ list of --batch-taus is
// estimated as one concurrent batch, and --repeat re-submits the batch to
// exercise the estimate cache (repeats are served without re-sampling).
// Each row reports the mean over --trials runs, the standard error of that
// mean (n/a below two trials — a single draw has no measurable spread), and
// the number of pair-similarity evaluations performed. --max-rel-error E
// lets every request stop early once the running standard error of the mean
// falls to E · |mean| (any-τ early exit; the row then shows the trials that
// actually ran). --json FILE mirrors every report row as one JSON object
// per line. With --exact it also computes the exact join size for
// comparison (quadratic in the worst case; intended for small datasets).
//
// --stream OPFILE switches to the StreamingEstimationService: the dataset
// becomes the backing store (no vector starts live) and OPFILE is replayed
// line by line. Format (ids refer to dataset positions; '#' comments):
//   insert <id> [<id-end>]       make ids [id, id-end] live
//   remove <id> [<id-end>]       expire ids [id, id-end]
//   erase <id> [<id-end>]        expire AND tombstone ids (payload is
//                                reclaimed by arena compaction; the ids
//                                can never be re-inserted)
//   estimate <tau> [<tau> ...]   batched streaming LSH-SS estimates
//   checkpoint <path>            snapshot the full engine state (VSJS)
//   restore <path>               replace the engine with a snapshot
// Every estimate row reports the epoch and live count it was answered at;
// a mutation bumps the epoch, so repeats of a τ after churn are recomputed
// rather than served from cache.
//
// Persistence flags:
//   --save-dataset PATH   re-save the loaded/generated dataset as VSJB v2
//   --mmap                open --dataset zero-copy via mmap (VSJB v2 only)
//   --save-snapshot PATH  checkpoint the streaming engine after the op file
//   --load-snapshot PATH  start the streaming engine from a snapshot
//                         (replaces --dataset/--synthetic; needs --stream)
//
// Observability flags (all output goes to stderr or files — stdout stays
// reserved for the report tables, keeping the golden CLI fixtures intact):
//   --metrics             end-of-run profiling table on stderr
//   --metrics-json PATH   write the metrics snapshot as one JSON document
//   --trace PATH          write collected spans as Chrome trace_event JSON
//                         (loadable in chrome://tracing / Perfetto)
//   --stats-interval MS   live profiling table on stderr every MS ms while
//                         the op stream replays (needs --stream)
//
// Kernel dispatch:
//   --simd LEVEL          scalar|sse2|avx2|auto — pin the SIMD level of the
//                         hashing and pair-evaluation kernels (the in-
//                         process mirror of the VSJ_SIMD / VSJ_FORCE_SCALAR
//                         environment overrides; takes precedence over
//                         them, clamped to what the CPU supports). All
//                         levels are bit-identical, so this is a pure
//                         throughput knob; the level in effect is reported
//                         on stderr and as the `simd.active_level` gauge in
//                         the --metrics table (0 scalar, 1 sse2, 2 avx2).

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include <fstream>

#include "vsj/io/dataset_io.h"
#include "vsj/vector/mapped_csr_storage.h"
#include "vsj/gen/workloads.h"
#include "vsj/join/brute_force_join.h"
#include "vsj/obs/obs.h"
#include "vsj/obs/stat_reporter.h"
#include "vsj/service/estimation_service.h"
#include "vsj/service/streaming_estimation_service.h"
#include "vsj/util/cpu.h"
#include "vsj/util/table_printer.h"
#include "vsj/util/timer.h"

namespace {

struct Args {
  std::string dataset_path;
  std::string synthetic;  // dblp | nyt | pubmed
  std::string estimator = "LSH-SS";
  size_t n = 20000;
  std::vector<double> taus = {0.8};
  uint32_t k = 20;
  uint32_t tables = 1;
  size_t trials = 1;
  uint64_t seed = 1;
  size_t threads = 1;
  size_t repeat = 1;
  /// Any-τ early exit (EstimateRequest::max_rel_error); 0 = run every
  /// trial of the --trials budget.
  double max_rel_error = 0.0;
  bool exact = false;
  std::string json_path;  // JSON-lines estimate log (one object per row)
  std::string stream_ops_path;
  std::string save_dataset_path;
  std::string save_snapshot_path;
  std::string load_snapshot_path;
  bool use_mmap = false;
  bool taus_set = false;       // --tau / --batch-taus given explicitly
  bool estimator_set = false;  // --estimator given explicitly

  // Observability flags. All of their output goes to stderr or to files,
  // never stdout — the golden CLI fixtures diff stdout only and must stay
  // byte-identical with metrics enabled.
  bool metrics = false;            // end-of-run profiling table on stderr
  std::string metrics_json_path;   // one metrics JSON document
  std::string trace_path;          // Chrome trace_event JSON
  int stats_interval_ms = 0;       // live table period (--stream only)

  // --simd: pin the kernel dispatch level ("auto" keeps detection + env).
  std::string simd = "auto";
};

/// Strict numeric parses: the whole token must be consumed. Digits only —
/// strtoull would silently wrap a sign-prefixed token like "-5".
bool ParseU64(const std::string& token, uint64_t* out) {
  if (token.empty() ||
      token.find_first_not_of("0123456789") != std::string::npos) {
    return false;
  }
  char* end = nullptr;
  *out = std::strtoull(token.c_str(), &end, 10);
  return *end == '\0';
}

bool ParseDouble(const std::string& token, double* out) {
  char* end = nullptr;
  *out = std::strtod(token.c_str(), &end);
  return end != token.c_str() && *end == '\0';
}

/// Parses and validates the --batch-taus CSV; prints the offending token
/// to stderr on failure.
bool ParseTauList(const char* value, std::vector<double>* taus) {
  taus->clear();
  std::stringstream stream(value);
  std::string item;
  while (std::getline(stream, item, ',')) {
    if (item.empty()) continue;
    char* end = nullptr;
    const double tau = std::strtod(item.c_str(), &end);
    if (end == item.c_str() || *end != '\0') {
      std::cerr << "could not parse --batch-taus list: " << item << "\n";
      return false;
    }
    // A join threshold is a similarity in (0, 1]; out-of-range values used
    // to pass through silently and estimate nonsense (τ ≤ 0 returns every
    // pair, τ > 1 returns none). Duplicates used to burn a full re-sample
    // per copy for an answer the batch already carries.
    if (!(tau > 0.0) || tau > 1.0) {
      std::cerr << "out-of-range --batch-taus value (tau must be in (0, 1]): "
                << item << "\n";
      return false;
    }
    for (double seen : *taus) {
      if (seen == tau) {
        std::cerr << "duplicate --batch-taus value: " << item << "\n";
        return false;
      }
    }
    taus->push_back(tau);
  }
  if (taus->empty()) {
    std::cerr << "could not parse --batch-taus list: " << value << "\n";
    return false;
  }
  return true;
}

bool ParseArgs(int argc, char** argv, Args* args) {
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&](const char* name) -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "missing value for " << name << "\n";
        return nullptr;
      }
      return argv[++i];
    };
    if (flag == "--dataset") {
      const char* v = next("--dataset");
      if (!v) return false;
      args->dataset_path = v;
    } else if (flag == "--synthetic") {
      const char* v = next("--synthetic");
      if (!v) return false;
      args->synthetic = v;
    } else if (flag == "--estimator") {
      const char* v = next("--estimator");
      if (!v) return false;
      args->estimator = v;
      args->estimator_set = true;
    } else if (flag == "--n") {
      const char* v = next("--n");
      if (!v) return false;
      args->n = std::strtoull(v, nullptr, 10);
    } else if (flag == "--tau") {
      const char* v = next("--tau");
      if (!v) return false;
      args->taus = {std::strtod(v, nullptr)};
      args->taus_set = true;
    } else if (flag == "--batch-taus") {
      const char* v = next("--batch-taus");
      if (!v) return false;
      if (!ParseTauList(v, &args->taus)) return false;
      args->taus_set = true;
    } else if (flag == "--k") {
      const char* v = next("--k");
      if (!v) return false;
      args->k = static_cast<uint32_t>(std::strtoul(v, nullptr, 10));
    } else if (flag == "--tables") {
      const char* v = next("--tables");
      if (!v) return false;
      args->tables = static_cast<uint32_t>(std::strtoul(v, nullptr, 10));
    } else if (flag == "--trials") {
      const char* v = next("--trials");
      if (!v) return false;
      args->trials = std::strtoull(v, nullptr, 10);
    } else if (flag == "--seed") {
      const char* v = next("--seed");
      if (!v) return false;
      args->seed = std::strtoull(v, nullptr, 10);
    } else if (flag == "--threads") {
      const char* v = next("--threads");
      if (!v) return false;
      args->threads = std::strtoull(v, nullptr, 10);
    } else if (flag == "--repeat") {
      const char* v = next("--repeat");
      if (!v) return false;
      args->repeat = std::strtoull(v, nullptr, 10);
    } else if (flag == "--max-rel-error") {
      const char* v = next("--max-rel-error");
      if (!v) return false;
      if (!ParseDouble(v, &args->max_rel_error) ||
          !std::isfinite(args->max_rel_error) || args->max_rel_error < 0.0) {
        std::cerr << "--max-rel-error needs a finite non-negative bound: "
                  << v << "\n";
        return false;
      }
    } else if (flag == "--json") {
      const char* v = next("--json");
      if (!v) return false;
      args->json_path = v;
    } else if (flag == "--exact") {
      args->exact = true;
    } else if (flag == "--stream") {
      const char* v = next("--stream");
      if (!v) return false;
      args->stream_ops_path = v;
    } else if (flag == "--save-dataset") {
      const char* v = next("--save-dataset");
      if (!v) return false;
      args->save_dataset_path = v;
    } else if (flag == "--save-snapshot") {
      const char* v = next("--save-snapshot");
      if (!v) return false;
      args->save_snapshot_path = v;
    } else if (flag == "--load-snapshot") {
      const char* v = next("--load-snapshot");
      if (!v) return false;
      args->load_snapshot_path = v;
    } else if (flag == "--mmap") {
      args->use_mmap = true;
    } else if (flag == "--metrics") {
      args->metrics = true;
    } else if (flag == "--metrics-json") {
      const char* v = next("--metrics-json");
      if (!v) return false;
      args->metrics_json_path = v;
    } else if (flag == "--trace") {
      const char* v = next("--trace");
      if (!v) return false;
      args->trace_path = v;
    } else if (flag == "--stats-interval") {
      const char* v = next("--stats-interval");
      if (!v) return false;
      args->stats_interval_ms = static_cast<int>(std::strtol(v, nullptr, 10));
      if (args->stats_interval_ms <= 0) {
        std::cerr << "--stats-interval needs a positive millisecond period\n";
        return false;
      }
    } else if (flag == "--simd") {
      const char* v = next("--simd");
      if (!v) return false;
      args->simd = v;
      if (args->simd != "auto" && args->simd != "scalar" &&
          args->simd != "sse2" && args->simd != "avx2") {
        std::cerr << "--simd takes scalar, sse2, avx2 or auto (got "
                  << args->simd << ")\n";
        return false;
      }
    } else if (flag == "--help" || flag == "-h") {
      return false;
    } else {
      std::cerr << "unknown flag: " << flag << "\n";
      return false;
    }
  }
  if (args->threads == 0) args->threads = 1;
  if (args->repeat == 0) args->repeat = 1;
  if (args->trials == 0) args->trials = 1;
  if (!args->stream_ops_path.empty()) {
    // Stream mode replays the op file; the batch-mode question flags would
    // be silently ignored, so reject them instead of misleading the user.
    if (args->estimator_set && args->estimator != "LSH-SS") {
      std::cerr << "--stream only serves LSH-SS (got --estimator "
                << args->estimator << ")\n";
      return false;
    }
    if (args->taus_set || args->repeat != 1 || args->exact) {
      std::cerr << "--stream takes its taus from 'estimate' ops; "
                   "--tau/--batch-taus/--repeat/--exact do not apply\n";
      return false;
    }
  }
  if (args->use_mmap) {
    if (args->dataset_path.empty()) {
      std::cerr << "--mmap opens a VSJB v2 file in place; it needs "
                   "--dataset FILE\n";
      return false;
    }
    if (!args->stream_ops_path.empty()) {
      std::cerr << "--mmap serves the read-only batch path; the streaming "
                   "engine owns a mutable arena and cannot run over a "
                   "mapped file\n";
      return false;
    }
  }
  if (args->stats_interval_ms > 0 && args->stream_ops_path.empty()) {
    std::cerr << "--stats-interval prints live tables while an op stream "
                 "replays; it needs --stream OPFILE (batch runs report "
                 "once via --metrics)\n";
    return false;
  }
  if (!args->save_snapshot_path.empty() && args->stream_ops_path.empty()) {
    std::cerr << "--save-snapshot checkpoints the streaming engine; it "
                 "needs --stream OPFILE\n";
    return false;
  }
  if (!args->load_snapshot_path.empty()) {
    if (args->stream_ops_path.empty()) {
      std::cerr << "--load-snapshot restores the streaming engine; it "
                   "needs --stream OPFILE\n";
      return false;
    }
    if (!args->dataset_path.empty() || !args->synthetic.empty()) {
      std::cerr << "--load-snapshot carries its own dataset; drop "
                   "--dataset/--synthetic\n";
      return false;
    }
    if (!args->save_dataset_path.empty()) {
      std::cerr << "--save-dataset exports a loaded/generated dataset; it "
                   "does not apply to --load-snapshot (use 'checkpoint' "
                   "ops or --save-snapshot to persist the engine)\n";
      return false;
    }
    return true;
  }
  return !args->dataset_path.empty() || !args->synthetic.empty();
}

void PrintUsage() {
  std::cerr
      << "usage: vsjoin_estimate (--dataset FILE | --synthetic "
         "dblp|nyt|pubmed | --load-snapshot FILE) --tau T\n"
         "       [--batch-taus T1,T2,...] [--estimator NAME] [--n N]\n"
         "       [--k K] [--tables L] [--trials R] [--seed S]\n"
         "       [--threads T] [--repeat R] [--max-rel-error E]\n"
         "       [--json FILE] [--exact] [--stream OPFILE]\n"
         "       [--mmap] [--save-dataset FILE] [--save-snapshot FILE]\n"
         "       [--metrics] [--metrics-json FILE] [--trace FILE]\n"
         "       [--stats-interval MS] [--simd scalar|sse2|avx2|auto]\n"
         "estimators: LSH-SS LSH-SS(D) RS(pop) RS(cross) LSH-S J_U LC\n"
         "            Adaptive Bifocal LSH-SS(median) LSH-SS(vbucket)\n"
         "stream op file: 'insert I [J]' | 'remove I [J]' | "
         "'erase I [J]' | "
         "'estimate T...' | 'checkpoint PATH' | 'restore PATH'\n";
}

/// std error column: a single trial has no spread to measure, so the 0.0
/// the aggregator leaves behind would read as "perfectly converged".
std::string FmtStdError(const vsj::EstimateResponse& response) {
  if (response.trials < 2) return "n/a";
  return vsj::TablePrinter::Fmt(response.std_error, 1);
}

/// One response as a JSON-lines object for --json. std_dev / std_error are
/// omitted below two trials — with a single draw the spread is unknown,
/// not zero (the report table prints "n/a" for the same reason).
void AppendResponseJson(std::ostream& out, const std::string& extra,
                        const vsj::EstimateResponse& response) {
  const auto number = [](double v) -> std::string {
    if (!std::isfinite(v)) return "null";
    char buffer[40];
    std::snprintf(buffer, sizeof(buffer), "%.17g", v);
    return buffer;
  };
  out << "{" << extra << "\"estimator\":\"" << response.estimator_name
      << "\",\"tau\":" << number(response.tau)
      << ",\"trials\":" << response.trials
      << ",\"estimate\":" << number(response.mean_estimate);
  if (response.trials >= 2) {
    out << ",\"std_dev\":" << number(response.std_dev)
        << ",\"std_error\":" << number(response.std_error);
  }
  out << ",\"pairs_evaluated\":" << response.pairs_evaluated
      << ",\"num_unguaranteed\":" << response.num_unguaranteed
      << ",\"from_cache\":" << (response.from_cache ? "true" : "false")
      << "}\n";
}

/// Flips the runtime observability switches requested on the command line
/// and warns when the build compiled them out.
void ArmObservability(const Args& args) {
  const bool want_metrics = args.metrics || !args.metrics_json_path.empty() ||
                            args.stats_interval_ms > 0;
  if (!VSJ_METRICS_COMPILED && (want_metrics || !args.trace_path.empty())) {
    std::cerr << "warning: built with VSJ_METRICS=OFF; "
                 "--metrics/--metrics-json/--trace/--stats-interval will "
                 "record nothing\n";
  }
  if (want_metrics) vsj::obs::EnableMetrics(true);
  if (!args.trace_path.empty()) vsj::obs::EnableTracing(true);
}

/// Emits the end-of-run observability artifacts on destruction, so every
/// exit path of main reports: the profiling table on stderr (--metrics),
/// one metrics JSON document (--metrics-json) and the Chrome trace file
/// (--trace). Stdout is never touched.
struct ObservabilityGuard {
  explicit ObservabilityGuard(const Args& args) : args(args) {}

  ~ObservabilityGuard() {
    if (args.metrics || !args.metrics_json_path.empty()) {
      const vsj::obs::RegistrySnapshot snapshot =
          vsj::obs::MetricRegistry::Global().Snapshot();
      if (args.metrics) {
        vsj::obs::PrintMetricsTable(snapshot, nullptr, std::cerr, "metrics");
      }
      if (!args.metrics_json_path.empty()) {
        std::string error;
        if (!vsj::obs::WriteMetricsJson(snapshot, args.metrics_json_path,
                                        &error)) {
          std::cerr << "failed to write metrics json: " << error << "\n";
        }
      }
    }
    if (!args.trace_path.empty()) {
      const vsj::obs::TraceCollector& collector =
          vsj::obs::TraceCollector::Global();
      std::string error;
      if (!collector.WriteChromeTraceFile(args.trace_path, &error)) {
        std::cerr << "failed to write trace: " << error << "\n";
      } else {
        std::cerr << "trace: " << collector.size() << " span(s) written to "
                  << args.trace_path;
        if (collector.dropped() > 0) {
          std::cerr << " (" << collector.dropped() << " dropped)";
        }
        std::cerr << "\n";
      }
    }
  }

  const Args& args;
};

vsj::StreamingEstimationServiceOptions StreamOptions(const Args& args) {
  vsj::StreamingEstimationServiceOptions options;
  options.k = args.k;
  options.num_tables = args.tables;
  options.num_threads = args.threads;
  options.family_seed = args.seed ^ 0x5eedULL;
  return options;
}

/// Replays `args.stream_ops_path` against the streaming engine (freshly
/// built over a dataset, or restored from a snapshot). Returns the process
/// exit code.
int RunStreamMode(std::unique_ptr<vsj::StreamingEstimationService> service,
                  const Args& args) {
  std::ifstream ops(args.stream_ops_path);
  if (!ops) {
    std::cerr << "failed to open op file " << args.stream_ops_path << "\n";
    return 1;
  }

  // Live profiling tables on stderr while the op file replays; the
  // reporter's destructor emits one final tick on every return path below.
  std::unique_ptr<vsj::obs::StatReporter> reporter;
  if (args.stats_interval_ms > 0) {
    vsj::obs::StatReporterOptions reporter_options;
    reporter_options.interval_ms = args.stats_interval_ms;
    reporter_options.out = &std::cerr;
    reporter = std::make_unique<vsj::obs::StatReporter>(reporter_options);
  }

  std::ofstream json_out;
  if (!args.json_path.empty()) {
    json_out.open(args.json_path, std::ios::trunc);
    if (!json_out) {
      std::cerr << "failed to open --json file " << args.json_path << "\n";
      return 1;
    }
  }

  vsj::TablePrinter report("streaming estimates (LSH-SS, " +
                           std::to_string(args.trials) + " trial(s) each)");
  report.SetHeader({"line", "epoch", "live", "tau", "estimate", "std error",
                    "pairs eval", "unguaranteed", "cached"});

  size_t line_number = 0;
  size_t mutations = 0;
  std::string line;
  while (std::getline(ops, line)) {
    ++line_number;
    const size_t comment = line.find('#');
    if (comment != std::string::npos) line = line.substr(0, comment);
    std::stringstream tokens(line);
    std::vector<std::string> words;
    std::string word;
    while (tokens >> word) words.push_back(word);
    if (words.empty()) continue;  // blank line
    const std::string& op = words.front();

    if (op == "insert" || op == "remove" || op == "erase") {
      uint64_t first = 0;
      uint64_t last = 0;
      if (words.size() < 2 || words.size() > 3 ||
          !ParseU64(words[1], &first) ||
          !(words.size() == 2 ? (last = first, true)
                              : ParseU64(words[2], &last))) {
        std::cerr << "line " << line_number << ": expected '" << op
                  << " <id> [<id-end>]'\n";
        return 1;
      }
      if (last < first) {
        std::cerr << "line " << line_number << ": empty range " << first
                  << ".." << last << "\n";
        return 1;
      }
      for (uint64_t id = first; id <= last; ++id) {
        const auto vector_id = static_cast<vsj::VectorId>(id);
        if (id >= service->dataset().size()) {
          std::cerr << "line " << line_number << ": id " << id
                    << " outside the dataset (n = "
                    << service->dataset().size() << ")\n";
          return 1;
        }
        if (op == "insert") {
          if (service->Contains(vector_id)) {
            std::cerr << "line " << line_number << ": id " << id
                      << " is already live\n";
            return 1;
          }
          if (!service->store().Contains(vector_id)) {
            std::cerr << "line " << line_number << ": id " << id
                      << " was erased and cannot return\n";
            return 1;
          }
          VSJ_TRACE_SPAN(op_span, "stream.op.insert_ns");
          service->Insert(vector_id);
        } else if (op == "erase") {
          if (!service->store().Contains(vector_id)) {
            std::cerr << "line " << line_number << ": id " << id
                      << " was already erased\n";
            return 1;
          }
          VSJ_TRACE_SPAN(op_span, "stream.op.erase_ns");
          service->Erase(vector_id);
        } else {
          if (!service->Contains(vector_id)) {
            std::cerr << "line " << line_number << ": id " << id
                      << " is not live\n";
            return 1;
          }
          VSJ_TRACE_SPAN(op_span, "stream.op.remove_ns");
          service->Remove(vector_id);
        }
        ++mutations;
        VSJ_COUNTER_ADD("stream.mutations", 1);
      }
    } else if (op == "estimate") {
      std::vector<vsj::EstimateRequest> batch;
      for (size_t w = 1; w < words.size(); ++w) {
        double tau = 0.0;
        if (!ParseDouble(words[w], &tau)) {
          std::cerr << "line " << line_number << ": bad tau '" << words[w]
                    << "'\n";
          return 1;
        }
        vsj::EstimateRequest request;
        request.estimator_name = "LSH-SS";
        request.tau = tau;
        request.trials = args.trials;
        request.seed = args.seed;
        request.max_rel_error = args.max_rel_error;
        batch.push_back(request);
      }
      if (batch.empty()) {
        std::cerr << "line " << line_number << ": estimate needs a tau\n";
        return 1;
      }
      std::vector<vsj::EstimateResponse> responses;
      {
        VSJ_TRACE_SPAN(op_span, "stream.op.estimate_ns");
        responses = service->EstimateBatch(batch);
      }
      for (const vsj::EstimateResponse& response : responses) {
        report.AddRow({std::to_string(line_number),
                       std::to_string(service->epoch()),
                       std::to_string(service->num_live()),
                       vsj::TablePrinter::Fmt(response.tau, 2),
                       vsj::TablePrinter::Fmt(response.mean_estimate, 1),
                       FmtStdError(response),
                       std::to_string(response.pairs_evaluated),
                       std::to_string(response.num_unguaranteed),
                       response.from_cache ? "yes" : "no"});
        if (json_out.is_open()) {
          AppendResponseJson(
              json_out,
              "\"line\":" + std::to_string(line_number) +
                  ",\"epoch\":" + std::to_string(service->epoch()) +
                  ",\"live\":" + std::to_string(service->num_live()) + ",",
              response);
        }
      }
    } else if (op == "checkpoint" || op == "restore") {
      if (words.size() != 2) {
        std::cerr << "line " << line_number << ": expected '" << op
                  << " <path>'\n";
        return 1;
      }
      if (op == "checkpoint") {
        VSJ_TRACE_SPAN(op_span, "stream.op.checkpoint_ns");
        const vsj::IoStatus status = service->Checkpoint(words[1]);
        if (!status.ok()) {
          std::cerr << "line " << line_number
                    << ": checkpoint failed: " << status.ToString() << "\n";
          return 1;
        }
      } else {
        VSJ_TRACE_SPAN(op_span, "stream.op.restore_ns");
        std::unique_ptr<vsj::StreamingEstimationService> restored;
        const vsj::IoStatus status = vsj::StreamingEstimationService::Restore(
            words[1], &restored, StreamOptions(args));
        if (!status.ok()) {
          std::cerr << "line " << line_number
                    << ": restore failed: " << status.ToString() << "\n";
          return 1;
        }
        service = std::move(restored);
      }
    } else {
      std::cerr << "line " << line_number << ": unknown op '" << op << "'\n";
      return 1;
    }
  }

  if (!args.save_snapshot_path.empty()) {
    const vsj::IoStatus status =
        service->Checkpoint(args.save_snapshot_path);
    if (!status.ok()) {
      std::cerr << "checkpoint failed: " << status.ToString() << "\n";
      return 1;
    }
    std::cerr << "snapshot saved to " << args.save_snapshot_path << "\n";
  }

  report.Print(std::cout);
  const vsj::EstimateCacheStats cache_stats = service->cache().stats();
  std::cout << "stream: " << mutations << " mutation(s), final epoch "
            << service->epoch() << ", " << service->num_live() << " live\n"
            << "cache: " << cache_stats.hits << " hit(s), "
            << cache_stats.misses << " miss(es), " << cache_stats.epoch
            << " invalidation(s)\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!ParseArgs(argc, argv, &args)) {
    PrintUsage();
    return 2;
  }
  if (args.simd != "auto") {
    vsj::SimdLevel requested = vsj::SimdLevel::kScalar;
    if (args.simd == "sse2") requested = vsj::SimdLevel::kSse2;
    if (args.simd == "avx2") requested = vsj::SimdLevel::kAvx2;
    const vsj::SimdLevel installed = vsj::SetSimdLevel(requested);
    if (installed != requested) {
      std::cerr << "warning: --simd " << args.simd
                << " is not supported by this CPU; using "
                << vsj::SimdLevelName(installed) << "\n";
    }
    // stderr only: the golden fixtures diff stdout, and every level is
    // bit-identical there by contract.
    std::cerr << "simd: " << vsj::SimdLevelName(installed) << " (--simd "
              << args.simd << ")\n";
  }
  ArmObservability(args);
  ObservabilityGuard observability(args);
  // Recorded after arming so the --metrics table reports the dispatch
  // level in effect (0 scalar, 1 sse2, 2 avx2).
  VSJ_GAUGE_SET("simd.active_level",
                static_cast<int64_t>(vsj::ActiveSimdLevel()));

  // Snapshot-restored stream mode carries its own dataset.
  if (!args.load_snapshot_path.empty()) {
    std::unique_ptr<vsj::StreamingEstimationService> restored;
    const vsj::IoStatus status = vsj::StreamingEstimationService::Restore(
        args.load_snapshot_path, &restored, StreamOptions(args));
    if (!status.ok()) {
      std::cerr << "failed to restore snapshot: " << status.ToString()
                << "\n";
      return 1;
    }
    std::cerr << "snapshot: " << restored->num_live() << " live at epoch "
              << restored->epoch() << "\n";
    return RunStreamMode(std::move(restored), args);
  }

  // --mmap serves the batch path zero-copy; the mapped storage must stay
  // alive for the lifetime of the service below.
  vsj::MappedCsrStorage mapped;
  vsj::VectorDataset dataset;
  if (args.use_mmap) {
    const vsj::IoStatus status =
        vsj::MappedCsrStorage::Open(args.dataset_path, &mapped);
    if (!status.ok()) {
      std::cerr << "failed to map dataset: " << status.ToString() << "\n";
      return 1;
    }
  } else if (!args.dataset_path.empty()) {
    const vsj::IoStatus status =
        vsj::LoadDatasetFromFile(args.dataset_path, &dataset);
    if (!status.ok()) {
      std::cerr << "failed to load dataset: " << status.ToString() << "\n";
      return 1;
    }
  } else if (args.synthetic == "dblp") {
    dataset = vsj::GenerateCorpus(vsj::DblpLikeConfig(args.n, args.seed));
  } else if (args.synthetic == "nyt") {
    dataset = vsj::GenerateCorpus(vsj::NytLikeConfig(args.n, args.seed));
  } else if (args.synthetic == "pubmed") {
    dataset = vsj::GenerateCorpus(vsj::PubmedLikeConfig(args.n, args.seed));
  } else {
    std::cerr << "unknown synthetic corpus: " << args.synthetic << "\n";
    return 2;
  }
  const vsj::DatasetView view =
      args.use_mmap ? vsj::DatasetView(mapped) : vsj::DatasetView(dataset);

  if (!args.save_dataset_path.empty()) {
    const vsj::IoStatus status =
        vsj::SaveDatasetToFile(view, args.save_dataset_path);
    if (!status.ok()) {
      std::cerr << "failed to save dataset: " << status.ToString() << "\n";
      return 1;
    }
    std::cerr << "dataset saved (VSJB v2) to " << args.save_dataset_path
              << "\n";
  }

  const vsj::DatasetStats stats = vsj::ComputeStats(view);
  std::cerr << "dataset: n = " << stats.num_vectors
            << ", avg features = " << stats.avg_features
            << (args.use_mmap ? " (mmap)" : "") << "\n";
  if (stats.num_vectors < 2) {
    std::cerr << "need at least two vectors\n";
    return 1;
  }

  if (!args.stream_ops_path.empty()) {
    auto service = std::make_unique<vsj::StreamingEstimationService>(
        std::move(dataset), StreamOptions(args));
    return RunStreamMode(std::move(service), args);
  }

  vsj::EstimationServiceOptions options;
  options.k = args.k;
  options.num_tables = args.tables;
  options.num_threads = args.threads;
  options.family_seed = args.seed ^ 0x5eedULL;
  // The owning flavor consumes the loaded dataset; --mmap serves the
  // estimators straight from the mapped file pages.
  auto service_ptr =
      args.use_mmap
          ? std::make_unique<vsj::EstimationService>(view, options)
          : std::make_unique<vsj::EstimationService>(std::move(dataset),
                                                     options);
  vsj::EstimationService& service = *service_ptr;
  std::cerr << "index: " << args.tables << " table(s), k = " << args.k
            << ", built in " << vsj::TablePrinter::Fmt(
                   service.index_build_seconds() * 1e3, 1)
            << " ms with " << args.threads << " thread(s)\n";

  std::vector<vsj::EstimateRequest> batch;
  batch.reserve(args.taus.size());
  for (double tau : args.taus) {
    vsj::EstimateRequest request;
    request.estimator_name = args.estimator;
    request.tau = tau;
    request.trials = args.trials;
    request.seed = args.seed;
    request.max_rel_error = args.max_rel_error;
    batch.push_back(request);
  }

  std::ofstream json_out;
  if (!args.json_path.empty()) {
    json_out.open(args.json_path, std::ios::trunc);
    if (!json_out) {
      std::cerr << "failed to open --json file " << args.json_path << "\n";
      return 1;
    }
  }

  vsj::TablePrinter report("estimates (" + args.estimator + ", " +
                           std::to_string(args.trials) + " trial(s) each)");
  report.SetHeader({"pass", "tau", "estimate", "std error", "pairs eval",
                    "unguaranteed", "cached"});
  for (size_t pass = 0; pass < args.repeat; ++pass) {
    vsj::Timer timer;
    const std::vector<vsj::EstimateResponse> responses =
        service.EstimateBatch(batch);
    const double batch_ms = timer.ElapsedMillis();
    for (const vsj::EstimateResponse& response : responses) {
      report.AddRow({std::to_string(pass + 1),
                     vsj::TablePrinter::Fmt(response.tau, 2),
                     vsj::TablePrinter::Fmt(response.mean_estimate, 1),
                     FmtStdError(response),
                     std::to_string(response.pairs_evaluated),
                     std::to_string(response.num_unguaranteed),
                     response.from_cache ? "yes" : "no"});
      if (json_out.is_open()) {
        AppendResponseJson(json_out,
                           "\"pass\":" + std::to_string(pass + 1) + ",",
                           response);
      }
    }
    std::cerr << "pass " << pass + 1 << ": " << responses.size()
              << " estimate(s) in " << vsj::TablePrinter::Fmt(batch_ms, 1)
              << " ms\n";
  }
  report.Print(std::cout);

  const vsj::EstimateCacheStats cache_stats = service.cache().stats();
  std::cout << "cache: " << cache_stats.hits << " hit(s), "
            << cache_stats.misses << " miss(es), hit rate "
            << vsj::TablePrinter::Pct(cache_stats.HitRate()) << "\n";

  if (args.exact) {
    for (double tau : args.taus) {
      const uint64_t exact = vsj::BruteForceJoinSize(
          service.dataset(), service.options().measure, tau);
      std::cout << "exact(tau=" << tau << ") = " << exact << "\n";
    }
  }
  return 0;
}
