#!/usr/bin/env python3
"""CI gate for observability hot-path overhead.

Compares BenchJson documents from the same bench binary run with metrics
recording disabled (--off) and enabled (--on). For every result series
present in both, takes the best (minimum) value across the given runs —
all series are "lower is better" (ns_per_pair etc.) — and fails when the
enabled best is more than --max-overhead-pct above the disabled best.

Usage:
  check_metrics_overhead.py --off a.json b.json --on c.json d.json \
      [--max-overhead-pct 5] [--series REGEX]

--series restricts the gate to matching result names: smoke-scale micro
series (e.g. heavy-skew pairings with few effective iterations) can have
>20% run-to-run noise, so CI gates on the stable headline kernels only.
"""

import argparse
import json
import re
import sys


def best_values(paths):
    """name -> minimum value across the runs (all units: lower is better)."""
    best = {}
    for path in paths:
        with open(path) as f:
            doc = json.load(f)
        for record in doc.get("results", []):
            name, value = record["name"], float(record["value"])
            if name not in best or value < best[name]:
                best[name] = value
    return best


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--off", nargs="+", required=True,
                        help="BenchJson files from runs with metrics off")
    parser.add_argument("--on", nargs="+", required=True,
                        help="BenchJson files from runs with metrics on")
    parser.add_argument("--max-overhead-pct", type=float, default=5.0)
    parser.add_argument("--series", default=None,
                        help="regex; only gate result names matching it")
    args = parser.parse_args()

    off = best_values(args.off)
    on = best_values(args.on)
    shared = sorted(set(off) & set(on))
    if args.series is not None:
        pattern = re.compile(args.series)
        shared = [name for name in shared if pattern.search(name)]
    if not shared:
        print("check_metrics_overhead: no shared result series", file=sys.stderr)
        return 1

    failed = False
    for name in shared:
        if off[name] <= 0:
            continue
        overhead_pct = (on[name] - off[name]) / off[name] * 100.0
        status = "ok"
        if overhead_pct > args.max_overhead_pct:
            status = "FAIL"
            failed = True
        print(f"{name}: off={off[name]:.3f} on={on[name]:.3f} "
              f"overhead={overhead_pct:+.2f}% [{status}]")

    if failed:
        print(f"check_metrics_overhead: overhead above "
              f"{args.max_overhead_pct:.1f}% threshold", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
