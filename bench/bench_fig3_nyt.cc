// Figure 3 (§6.2): accuracy and variance on the NYT-like corpus (same
// panels as Figure 2).
//
// Paper signatures: LSH-SS is accurate at high thresholds and shows
// underestimation at τ ≤ 0.5 (the "not most interesting" range); LSH-SS(D)
// reduces that underestimation; RS fluctuates at high thresholds with
// larger variance throughout.

#include <iostream>

#include "bench_common.h"

int main() {
  using namespace vsj;
  using namespace vsj::bench;

  const Scale scale = LoadScale(/*default_n=*/6000, /*default_k=*/20);
  Workbench bench =
      BuildWorkbench(NytLikeConfig(scale.n, scale.seed), scale.k);

  const EstimatorContext context = MakeContext(bench);
  const auto cells =
      RunAccuracyGrid(bench, context, HeadlineEstimatorNames(),
                      StandardThresholds(), scale.trials, scale.seed);
  PrintAccuracyFigure("Figure 3: accuracy/variance on " + bench.config.name,
                      cells);
  PrintRuntimeSummary(cells);
  return 0;
}
