// Snapshot-io bench: what the VSJB v2 columnar format buys at load time.
//
// Three ways to open the same DBLP-like corpus:
//   v1 load   — the legacy VSJD row stream, parsed vector-by-vector into
//               the CSR arena (what every startup paid before this layer);
//   v2 load   — bulk column reads + checksum verify into a heap arena;
//   v2 mmap   — MappedCsrStorage::Open, zero-copy: the estimators read
//               straight from the file pages (timed with and without
//               checksum verification; without, the open cost is
//               O(header + section table)).
// The headline criterion is v2 mmap open ≥ 10× faster than the v1 stream
// load; the bench also verifies that all registered estimators are
// bit-identical over mapped vs heap storage, so the fast path cannot
// silently change answers. A final section times a streaming-engine
// Checkpoint/Restore round trip at the same scale.
//
// Scale knobs: VSJ_N (corpus size, default 20000), VSJ_ITERS (timing
// repetitions, best-of, default 3), VSJ_SEED.

#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "vsj/core/estimator_registry.h"
#include "vsj/io/dataset_io.h"
#include "vsj/lsh/simhash.h"
#include "vsj/service/streaming_estimation_service.h"
#include "vsj/util/check.h"
#include "vsj/util/env.h"
#include "vsj/util/rng.h"
#include "vsj/util/table_printer.h"
#include "vsj/util/timer.h"
#include "vsj/vector/mapped_csr_storage.h"

namespace {

/// Best-of-`iters` wall time of `body` in milliseconds.
template <typename Body>
double BestOfMillis(size_t iters, Body&& body) {
  double best = 0.0;
  for (size_t i = 0; i < iters; ++i) {
    vsj::Timer timer;
    body();
    const double ms = timer.ElapsedMillis();
    if (i == 0 || ms < best) best = ms;
  }
  return best;
}

}  // namespace

int main() {
  const auto n = static_cast<size_t>(vsj::EnvInt64("VSJ_N", 20000));
  const auto iters = static_cast<size_t>(vsj::EnvInt64("VSJ_ITERS", 3));
  const auto seed = static_cast<uint64_t>(vsj::EnvInt64("VSJ_SEED", 1));

  vsj::VectorDataset dataset =
      vsj::GenerateCorpus(vsj::DblpLikeConfig(n, seed));
  const vsj::DatasetStats stats = dataset.ComputeStats();
  std::printf("snapshot-io bench: DBLP-like n = %zu, %zu features, %zu\n",
              stats.num_vectors, stats.total_features, iters);

  const std::string v1_path = "/tmp/vsj_bench_snapshot_v1.vsjd";
  const std::string v2_path = "/tmp/vsj_bench_snapshot_v2.vsjb";
  {
    std::ofstream v1(v1_path, std::ios::binary);
    VSJ_CHECK(vsj::WriteDatasetV1(dataset, v1).ok());
  }
  VSJ_CHECK(vsj::SaveDatasetToFile(dataset, v2_path).ok());

  // --- Load-path timings. ---
  const double v1_load_ms = BestOfMillis(iters, [&] {
    vsj::VectorDataset loaded;
    VSJ_CHECK(vsj::LoadDatasetFromFile(v1_path, &loaded).ok());
    VSJ_CHECK(loaded.size() == dataset.size());
  });
  const double v2_load_ms = BestOfMillis(iters, [&] {
    vsj::VectorDataset loaded;
    VSJ_CHECK(vsj::LoadDatasetFromFile(v2_path, &loaded).ok());
    VSJ_CHECK(loaded.size() == dataset.size());
  });
  const double v2_mmap_verified_ms = BestOfMillis(iters, [&] {
    vsj::MappedCsrStorage mapped;
    VSJ_CHECK(vsj::MappedCsrStorage::Open(v2_path, &mapped).ok());
    VSJ_CHECK(mapped.size() == dataset.size());
  });
  vsj::MappedCsrStorage::OpenOptions unverified;
  unverified.verify_checksums = false;
  const double v2_mmap_ms = BestOfMillis(iters, [&] {
    vsj::MappedCsrStorage mapped;
    VSJ_CHECK(vsj::MappedCsrStorage::Open(v2_path, &mapped, unverified).ok());
    VSJ_CHECK(mapped.size() == dataset.size());
  });

  vsj::TablePrinter table("dataset open paths (best of " +
                          std::to_string(iters) + ")");
  table.SetHeader({"path", "ms", "speedup vs v1"});
  const auto row = [&](const char* label, double ms) {
    table.AddRow({label, vsj::TablePrinter::Fmt(ms, 3),
                  vsj::TablePrinter::Fmt(v1_load_ms / ms, 1) + "x"});
  };
  row("VSJD v1 stream load", v1_load_ms);
  row("VSJB v2 column load", v2_load_ms);
  row("VSJB v2 mmap open (verify)", v2_mmap_verified_ms);
  row("VSJB v2 mmap open", v2_mmap_ms);
  table.Print(std::cout);

  const double mmap_speedup = v1_load_ms / v2_mmap_ms;
  std::printf("criterion: v2 mmap open %.1fx faster than v1 stream load "
              "(>= 10x required) %s\n",
              mmap_speedup, mmap_speedup >= 10.0 ? "PASS" : "FAIL");

  // --- Mapped vs heap estimator bit-identity (all registry estimators).
  vsj::MappedCsrStorage mapped;
  VSJ_CHECK(vsj::MappedCsrStorage::Open(v2_path, &mapped).ok());
  vsj::SimHashFamily family(seed ^ 0xabcdULL);
  const vsj::LshIndex heap_index(family, dataset, /*k=*/8, /*num_tables=*/1);
  const vsj::LshIndex mapped_index(family, vsj::DatasetView(mapped), 8, 1);
  size_t checked = 0;
  for (const std::string& name : vsj::AllEstimatorNames()) {
    vsj::EstimatorContext heap_context;
    heap_context.dataset = dataset;
    heap_context.index = &heap_index;
    heap_context.measure = vsj::SimilarityMeasure::kCosine;
    vsj::EstimatorContext mapped_context = heap_context;
    mapped_context.dataset = vsj::DatasetView(mapped);
    mapped_context.index = &mapped_index;
    const auto heap_estimator = vsj::CreateEstimator(name, heap_context);
    const auto mapped_estimator = vsj::CreateEstimator(name, mapped_context);
    for (const double tau : {0.5, 0.8}) {
      vsj::Rng heap_rng(seed + 101);
      vsj::Rng mapped_rng(seed + 101);
      const double a = heap_estimator->Estimate(tau, heap_rng).estimate;
      const double b = mapped_estimator->Estimate(tau, mapped_rng).estimate;
      VSJ_CHECK_MSG(a == b, "%s diverged over mapped storage at tau %.2f",
                    name.c_str(), tau);
    }
    ++checked;
  }
  std::printf("mapped-vs-heap: %zu estimators bit-identical\n", checked);

  // --- Streaming-engine checkpoint/restore round trip. ---
  const std::string snapshot_path = "/tmp/vsj_bench_snapshot.vsjs";
  vsj::StreamingEstimationServiceOptions engine_options;
  engine_options.k = 8;
  engine_options.num_tables = 2;
  engine_options.family_seed = seed ^ 0x5eedULL;
  vsj::StreamingEstimationService engine(std::move(dataset), engine_options);
  for (vsj::VectorId id = 0; id < stats.num_vectors; ++id) engine.Insert(id);
  for (vsj::VectorId id = 0; id < stats.num_vectors / 4; ++id) {
    engine.Remove(id);
  }
  const double checkpoint_ms = BestOfMillis(iters, [&] {
    VSJ_CHECK(engine.Checkpoint(snapshot_path).ok());
  });
  std::unique_ptr<vsj::StreamingEstimationService> restored;
  const double restore_ms = BestOfMillis(iters, [&] {
    VSJ_CHECK(vsj::StreamingEstimationService::Restore(snapshot_path,
                                                       &restored,
                                                       engine_options)
                  .ok());
  });
  VSJ_CHECK(restored->num_live() == engine.num_live());
  VSJ_CHECK(restored->effective_fingerprint() ==
            engine.effective_fingerprint());
  std::printf("engine snapshot: checkpoint %.2f ms, restore %.2f ms "
              "(%zu live, fingerprint round-trips)\n",
              checkpoint_ms, restore_ms, restored->num_live());

  std::remove(v1_path.c_str());
  std::remove(v2_path.c_str());
  std::remove(snapshot_path.c_str());
  return 0;
}
