// Figures 5 and 6 (Appendix C.2.1): impact of the answer-size threshold δ
// in SampleL, with the overall sample size fixed at m = n.
//   Figure 5: average absolute relative error over τ ∈ {0.1, ..., 1.0}
//   Figure 6: number of τ values with a big error (Ĵ/J ≥ 10 or J/Ĵ ≥ 10)
// for δ ∈ {0.5 log n, log n, 2 log n, √n}, plus RS(pop) at m = 1.5n.
//
// Paper signatures: δ > 2 log n underestimates badly (e.g. δ = √n gives
// < 10% of the true size at 4 of 10 thresholds); δ = log n balances.

#include <cmath>
#include <iostream>

#include "bench_common.h"
#include "vsj/util/hash.h"

int main() {
  using namespace vsj;
  using namespace vsj::bench;

  const Scale scale = LoadScale(/*default_n=*/20000);
  Workbench bench =
      BuildWorkbench(DblpLikeConfig(scale.n, scale.seed), scale.k);
  const double n = static_cast<double>(bench.dataset.size());
  const double log_n = std::log2(n);

  struct Variant {
    std::string label;
    std::string estimator;
    uint64_t delta;  // 0 for RS
  };
  const std::vector<Variant> variants = {
      {"LSH-SS d=0.5logn", "LSH-SS",
       static_cast<uint64_t>(std::max(1.0, 0.5 * log_n))},
      {"LSH-SS d=logn", "LSH-SS", static_cast<uint64_t>(log_n)},
      {"LSH-SS d=2logn", "LSH-SS", static_cast<uint64_t>(2 * log_n)},
      {"LSH-SS d=sqrt(n)", "LSH-SS",
       static_cast<uint64_t>(std::sqrt(n))},
      {"RS(pop) m=1.5n", "RS(pop)", 0},
  };

  TablePrinter fig5("Figure 5: average relative error varying delta (m = n)");
  fig5.SetHeader({"variant", "avg |rel error|"});
  TablePrinter fig6("Figure 6: # tau with big error (x10) varying delta");
  fig6.SetHeader({"variant", "big underest.", "big overest."});

  for (const Variant& variant : variants) {
    EstimatorContext context = MakeContext(bench);
    if (variant.delta != 0) context.lsh_ss.delta = variant.delta;
    auto estimator = CreateEstimator(variant.estimator, context);

    double total_err = 0.0;
    size_t defined = 0;
    size_t big_under = 0;
    size_t big_over = 0;
    for (double tau : StandardThresholds()) {
      const uint64_t true_j = bench.truth->JoinSize(tau);
      if (true_j == 0) continue;
      const TrialSeries series =
          RunTrials(*estimator, tau, scale.trials,
                    HashCombine(scale.seed, variant.delta * 31 + 7));
      const ErrorStats stats = ComputeErrorStats(
          series.estimates, static_cast<double>(true_j));
      total_err += stats.mean_absolute_relative_error;
      ++defined;
      // A τ value counts as "big error" when the mean estimate is off 10×.
      if (stats.mean_estimate > 0.0 &&
          static_cast<double>(true_j) / stats.mean_estimate >= 10.0) {
        ++big_under;
      } else if (stats.mean_estimate == 0.0) {
        ++big_under;
      }
      if (stats.mean_estimate / static_cast<double>(true_j) >= 10.0) {
        ++big_over;
      }
    }
    fig5.AddRow({variant.label,
                 TablePrinter::Fmt(total_err / std::max<size_t>(defined, 1),
                                   3)});
    fig6.AddRow({variant.label, std::to_string(big_under),
                 std::to_string(big_over)});
  }
  fig5.Print(std::cout);
  std::cout << "\n";
  fig6.Print(std::cout);
  return 0;
}
