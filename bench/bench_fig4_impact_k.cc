// Figure 4 (§6.3): impact of the number of hash functions k on accuracy at
// τ = 0.5 and τ = 0.8 (LSH-SS vs LSH-S), plus the §6.3 inline table of LSH
// table size vs k.
//
// Paper signatures: LSH-SS is insensitive to k (any reasonable k works);
// LSH-S is highly sensitive. Table size grows sublinearly in k as buckets
// saturate (3.2 / 7.5 / 12.6 / 14.1 / 16.5 MB for k = 10..50 on DBLP).

#include <iostream>
#include <map>
#include <string>

#include "bench_common.h"
#include "vsj/eval/experiment.h"
#include "vsj/util/hash.h"

int main() {
  using namespace vsj;
  using namespace vsj::bench;

  const Scale scale = LoadScale(/*default_n=*/20000);
  const CorpusConfig config = DblpLikeConfig(scale.n, scale.seed);
  const std::vector<uint32_t> ks = {10, 20, 30, 40, 50};
  const std::vector<double> taus = {0.5, 0.8};

  // Build the corpus + ground truth once; per-k only the index changes.
  Workbench base = BuildWorkbench(config, /*k=*/ks.front());

  struct Cell {
    double over = 0.0;
    double under = 0.0;
    bool defined = false;
  };
  std::map<uint32_t, std::map<std::string, std::map<double, Cell>>> grid;
  std::map<uint32_t, size_t> table_bytes;

  for (uint32_t k : ks) {
    LshIndex index(*base.family, base.dataset, k, 1);
    table_bytes[k] = index.MemoryBytes();
    EstimatorContext context;
    context.dataset = base.dataset;
    context.index = &index;
    for (const std::string& name : {std::string("LSH-SS"),
                                    std::string("LSH-S")}) {
      auto estimator = CreateEstimator(name, context);
      for (double tau : taus) {
        const uint64_t true_j = base.truth->JoinSize(tau);
        if (true_j == 0) continue;
        const TrialSeries series =
            RunTrials(*estimator, tau, scale.trials,
                      HashCombine(scale.seed, k * 131 + (name == "LSH-S")));
        const ErrorStats stats = ComputeErrorStats(
            series.estimates, static_cast<double>(true_j));
        Cell& cell = grid[k][name][tau];
        cell.over = stats.mean_overestimation;
        cell.under = stats.mean_underestimation;
        cell.defined = true;
      }
    }
  }

  for (double tau : taus) {
    TablePrinter table("Figure 4: relative error vs k at tau = " +
                       TablePrinter::Fmt(tau, 1));
    table.SetHeader({"k", "LSH-SS over", "LSH-SS under", "LSH-S over",
                     "LSH-S under"});
    for (uint32_t k : ks) {
      std::vector<std::string> row = {std::to_string(k)};
      for (const std::string& name : {std::string("LSH-SS"),
                                      std::string("LSH-S")}) {
        const Cell& cell = grid[k][name][tau];
        if (!cell.defined) {
          row.push_back("-");
          row.push_back("-");
        } else {
          row.push_back(TablePrinter::Pct(cell.over));
          row.push_back(TablePrinter::Pct(cell.under));
        }
      }
      table.AddRow(std::move(row));
    }
    table.Print(std::cout);
    std::cout << "\n";
  }

  TablePrinter size_table("LSH table size vs k (paper's accounting)");
  size_table.SetHeader({"k", "size (MB)"});
  for (uint32_t k : ks) {
    size_table.AddRow({std::to_string(k),
                       TablePrinter::Fmt(
                           static_cast<double>(table_bytes[k]) / 1e6, 2)});
  }
  size_table.Print(std::cout);
  return 0;
}
