// Figure 2 (§6.2): accuracy and variance on the DBLP-like corpus.
//   (a) relative error of overestimation vs τ
//   (b) relative error of underestimation vs τ
//   (c) STD of the estimates vs τ
// for LSH-SS, LSH-SS(D), RS(pop) and RS(cross).
//
// Paper signatures to reproduce: LSH-SS hardly overestimates; its
// underestimation is far milder than RS; RS errors explode above τ ≈ 0.4,
// fluctuating between huge overestimation and −100%; LSH-SS variance is
// orders of magnitude below RS at high thresholds. Runtime: LSH-SS ≪ RS.

#include <iostream>

#include "bench_common.h"

int main() {
  using namespace vsj;
  using namespace vsj::bench;

  const Scale scale = LoadScale(/*default_n=*/20000, /*default_k=*/20);
  Workbench bench =
      BuildWorkbench(DblpLikeConfig(scale.n, scale.seed), scale.k);

  const EstimatorContext context = MakeContext(bench);
  const auto cells =
      RunAccuracyGrid(bench, context, HeadlineEstimatorNames(),
                      StandardThresholds(), scale.trials, scale.seed);
  PrintAccuracyFigure("Figure 2: accuracy/variance on " + bench.config.name,
                      cells);
  PrintRuntimeSummary(cells);
  return 0;
}
