#include "bench_common.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <functional>
#include <iostream>
#include <map>
#include <sstream>

#include "vsj/obs/metrics.h"
#include "vsj/obs/stat_reporter.h"
#include "vsj/util/env.h"
#include "vsj/util/hash.h"
#include "vsj/util/timer.h"

namespace vsj::bench {

Scale LoadScale(size_t default_n, uint32_t default_k, size_t default_trials) {
  Scale scale;
  scale.n = static_cast<size_t>(
      EnvInt64("VSJ_N", static_cast<int64_t>(default_n)));
  scale.trials = static_cast<size_t>(
      EnvInt64("VSJ_TRIALS", static_cast<int64_t>(default_trials)));
  scale.seed = static_cast<uint64_t>(EnvInt64("VSJ_SEED", 1));
  scale.k = static_cast<uint32_t>(EnvInt64("VSJ_K", default_k));
  return scale;
}

Workbench BuildWorkbench(CorpusConfig config, uint32_t k, uint32_t tables,
                         std::vector<double> taus) {
  Workbench bench;
  bench.config = config;
  Timer timer;
  bench.dataset = GenerateCorpus(config);
  const double gen_seconds = timer.ElapsedSeconds();

  bench.family = std::make_unique<SimHashFamily>(config.seed ^ 0x5eedULL);
  timer.Reset();
  bench.index =
      std::make_unique<LshIndex>(*bench.family, bench.dataset, k, tables);
  bench.index_build_seconds = timer.ElapsedSeconds();

  timer.Reset();
  bench.truth = std::make_unique<GroundTruth>(
      bench.dataset, SimilarityMeasure::kCosine, std::move(taus));
  bench.ground_truth_seconds = timer.ElapsedSeconds();

  const DatasetStats stats = bench.dataset.ComputeStats();
  std::cout << "# corpus " << config.name << ": n = " << stats.num_vectors
            << ", dims = " << stats.num_dimensions
            << ", avg features = " << stats.avg_features << " ["
            << stats.min_features << ", " << stats.max_features << "]\n"
            << "# generated in " << TablePrinter::Fmt(gen_seconds, 2)
            << "s; LSH index (k = " << k << ", tables = " << tables
            << ") built in "
            << TablePrinter::Fmt(bench.index_build_seconds, 2)
            << "s; exact ground truth in "
            << TablePrinter::Fmt(bench.ground_truth_seconds, 2) << "s\n";
  return bench;
}

EstimatorContext MakeContext(const Workbench& bench) {
  EstimatorContext context;
  context.dataset = bench.dataset;
  context.index = bench.index.get();
  context.measure = SimilarityMeasure::kCosine;
  return context;
}

std::vector<AccuracyCell> RunAccuracyGrid(
    const Workbench& bench, const EstimatorContext& context,
    const std::vector<std::string>& estimator_names,
    const std::vector<double>& taus, size_t trials, uint64_t seed) {
  std::vector<AccuracyCell> cells;
  for (const std::string& name : estimator_names) {
    auto estimator = CreateEstimator(name, context);
    for (double tau : taus) {
      const uint64_t true_j = bench.truth->JoinSize(tau);
      if (true_j == 0) continue;  // relative error undefined
      const TrialSeries series = RunTrials(
          *estimator, tau, trials, HashCombine(seed, std::hash<std::string>{}(name)));
      AccuracyCell cell;
      cell.estimator = name;
      cell.tau = tau;
      cell.true_size = static_cast<double>(true_j);
      cell.stats = ComputeErrorStats(series.estimates, cell.true_size);
      cell.mean_runtime_ms = series.mean_runtime_ms;
      cell.num_unguaranteed = series.num_unguaranteed;
      cells.push_back(std::move(cell));
    }
  }
  return cells;
}

namespace {

/// cells grouped as tau → estimator → cell.
std::map<double, std::map<std::string, const AccuracyCell*>> GroupCells(
    const std::vector<AccuracyCell>& cells,
    std::vector<std::string>* estimator_order) {
  std::map<double, std::map<std::string, const AccuracyCell*>> grouped;
  for (const AccuracyCell& cell : cells) {
    grouped[cell.tau][cell.estimator] = &cell;
    if (std::find(estimator_order->begin(), estimator_order->end(),
                  cell.estimator) == estimator_order->end()) {
      estimator_order->push_back(cell.estimator);
    }
  }
  return grouped;
}

}  // namespace

void PrintAccuracyFigure(const std::string& figure_title,
                         const std::vector<AccuracyCell>& cells) {
  std::vector<std::string> estimators;
  const auto grouped = GroupCells(cells, &estimators);

  auto print_panel = [&](const std::string& panel,
                         auto value_of) {
    TablePrinter table(figure_title + " — " + panel);
    std::vector<std::string> header = {"tau", "true J"};
    header.insert(header.end(), estimators.begin(), estimators.end());
    table.SetHeader(std::move(header));
    for (const auto& [tau, row] : grouped) {
      std::vector<std::string> cells_out = {
          TablePrinter::Fmt(tau, 1),
          TablePrinter::Count(row.begin()->second->true_size)};
      for (const std::string& est : estimators) {
        auto it = row.find(est);
        cells_out.push_back(it == row.end() ? "-" : value_of(*it->second));
      }
      table.AddRow(std::move(cells_out));
    }
    table.Print(std::cout);
    std::cout << "\n";
  };

  print_panel("(a) relative error, overestimation (%)",
              [](const AccuracyCell& c) {
                return c.stats.num_overestimates == 0
                           ? std::string("0.0%")
                           : TablePrinter::Pct(c.stats.mean_overestimation);
              });
  print_panel("(b) relative error, underestimation (%)",
              [](const AccuracyCell& c) {
                return c.stats.num_underestimates == 0
                           ? std::string("0.0%")
                           : TablePrinter::Pct(c.stats.mean_underestimation);
              });
  print_panel("(c) STD of estimates",
              [](const AccuracyCell& c) {
                return TablePrinter::Sci(c.stats.std_dev, 1);
              });
}

void PrintRuntimeSummary(const std::vector<AccuracyCell>& cells) {
  std::map<std::string, std::pair<double, size_t>> sums;
  std::vector<std::string> order;
  for (const AccuracyCell& cell : cells) {
    auto [it, inserted] = sums.try_emplace(cell.estimator);
    if (inserted) order.push_back(cell.estimator);
    it->second.first += cell.mean_runtime_ms;
    it->second.second += 1;
  }
  TablePrinter table("Mean estimation runtime");
  table.SetHeader({"estimator", "mean runtime (ms)"});
  for (const std::string& est : order) {
    const auto& [total, count] = sums[est];
    table.AddRow({est, TablePrinter::Fmt(total / count, 2)});
  }
  table.Print(std::cout);
  std::cout << "\n";
}

BenchJson::BenchJson(int argc, char** argv, const std::string& bench_name)
    : bench_name_(bench_name) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      if (i + 1 >= argc) {
        std::cerr << "BenchJson: --json needs a path; no JSON will be "
                     "written\n";
        return;
      }
      path_ = argv[i + 1];
      return;
    }
  }
  const char* env = std::getenv("VSJ_BENCH_JSON");
  if (env != nullptr && *env != '\0') path_ = env;
}

void BenchJson::Add(const std::string& name, const std::string& unit,
                    double value, size_t iterations) {
  if (!enabled()) return;
  records_.push_back(Record{name, unit, value, iterations});
}

void BenchJson::AddMetricsSnapshot() {
  if (!enabled()) return;
  const obs::RegistrySnapshot snapshot =
      obs::MetricRegistry::Global().Snapshot();
  if (snapshot.samples.empty()) return;
  std::ostringstream out;
  obs::AppendMetricsJson(snapshot, out);
  metrics_json_ = out.str();
}

bool BenchJson::Write() const {
  if (!enabled()) return true;
  std::ostringstream out;
  out << "{\n  \"bench\": \"" << bench_name_ << "\",\n  \"results\": [";
  for (size_t i = 0; i < records_.size(); ++i) {
    const Record& r = records_[i];
    out << (i == 0 ? "" : ",") << "\n    {\"name\": \"" << r.name
        << "\", \"unit\": \"" << r.unit << "\", \"value\": " << r.value
        << ", \"iterations\": " << r.iterations << "}";
  }
  out << "\n  ]";
  if (!metrics_json_.empty()) {
    out << ",\n  \"metrics\": " << metrics_json_;
  }
  out << "\n}\n";
  std::ofstream os(path_);
  os << out.str();
  if (!os) {
    std::cerr << "BenchJson: cannot write " << path_ << "\n";
    return false;
  }
  return true;
}

}  // namespace vsj::bench
