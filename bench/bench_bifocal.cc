// §2 (related work, extension bench): bifocal-style degree sampling on the
// VSJ problem.
//
// The paper argues that bifocal sampling's equi-join guarantee assumes join
// sizes Ω(n log n) — "more than 15M pairs, corresponding to cosine
// similarity of only about 0.4" on DBLP — so it "cannot guarantee good
// estimates at high thresholds". This bench quantifies that: the adapted
// bifocal estimator tracks the join at low τ and collapses to 0 where
// LSH-SS still answers.

#include <iostream>

#include "bench_common.h"
#include "vsj/util/hash.h"

int main() {
  using namespace vsj;
  using namespace vsj::bench;

  const Scale scale = LoadScale(/*default_n=*/20000, /*default_k=*/20,
                                /*default_trials=*/30);
  Workbench bench =
      BuildWorkbench(DblpLikeConfig(scale.n, scale.seed), scale.k);

  const EstimatorContext context = MakeContext(bench);
  const std::vector<std::string> names = {"LSH-SS", "Bifocal", "Adaptive"};
  const auto cells = RunAccuracyGrid(bench, context, names,
                                     StandardThresholds(), scale.trials,
                                     scale.seed);

  TablePrinter table("Bifocal-style sampling vs LSH-SS (mean estimate / "
                     "trials collapsing to 0)");
  table.SetHeader({"tau", "true J", "LSH-SS mean", "Bifocal mean",
                   "Adaptive mean", "Bifocal |err|", "LSH-SS |err|"});
  for (double tau : StandardThresholds()) {
    const AccuracyCell* by_name[3] = {nullptr, nullptr, nullptr};
    for (const auto& cell : cells) {
      if (cell.tau != tau) continue;
      for (size_t i = 0; i < names.size(); ++i) {
        if (cell.estimator == names[i]) by_name[i] = &cell;
      }
    }
    if (by_name[0] == nullptr || by_name[1] == nullptr) continue;
    table.AddRow(
        {TablePrinter::Fmt(tau, 1),
         TablePrinter::Count(by_name[0]->true_size),
         TablePrinter::Count(by_name[0]->stats.mean_estimate),
         TablePrinter::Count(by_name[1]->stats.mean_estimate),
         by_name[2] != nullptr
             ? TablePrinter::Count(by_name[2]->stats.mean_estimate)
             : "-",
         TablePrinter::Pct(by_name[1]->stats.mean_absolute_relative_error),
         TablePrinter::Pct(
             by_name[0]->stats.mean_absolute_relative_error)});
  }
  table.Print(std::cout);
  return 0;
}
