// Figure 9 (Appendix C.4): accuracy and variance on the PUBMED-like corpus
// with k = 5, comparing LSH-SS and RS(pop).
//
// Paper signatures: average error of LSH-SS ≈ 73% vs RS ≈ 117%; LSH-SS
// shows an underestimation tendency but its STD is more than an order of
// magnitude smaller than RS's.

#include <iostream>

#include "bench_common.h"

int main() {
  using namespace vsj;
  using namespace vsj::bench;

  // App. C.4 uses k = 5 ("when the data set is largely dissimilar, smaller
  // k improves accuracy").
  const Scale scale = LoadScale(/*default_n=*/6000, /*default_k=*/5);
  Workbench bench =
      BuildWorkbench(PubmedLikeConfig(scale.n, scale.seed), scale.k);

  const EstimatorContext context = MakeContext(bench);
  const std::vector<std::string> names = {"LSH-SS", "RS(pop)"};
  const auto cells = RunAccuracyGrid(bench, context, names,
                                     StandardThresholds(), scale.trials,
                                     scale.seed);
  PrintAccuracyFigure("Figure 9: accuracy/variance on " + bench.config.name +
                          " (k = " + std::to_string(scale.k) + ")",
                      cells);

  // Headline averages quoted in the appendix text.
  double lsh_err = 0.0, rs_err = 0.0;
  size_t lsh_cnt = 0, rs_cnt = 0;
  for (const auto& cell : cells) {
    if (cell.estimator == "LSH-SS") {
      lsh_err += cell.stats.mean_absolute_relative_error;
      ++lsh_cnt;
    } else {
      rs_err += cell.stats.mean_absolute_relative_error;
      ++rs_cnt;
    }
  }
  if (lsh_cnt > 0 && rs_cnt > 0) {
    std::cout << "# average |relative error|: LSH-SS = "
              << TablePrinter::Pct(lsh_err / lsh_cnt) << ", RS(pop) = "
              << TablePrinter::Pct(rs_err / rs_cnt) << "\n";
  }
  PrintRuntimeSummary(cells);
  return 0;
}
