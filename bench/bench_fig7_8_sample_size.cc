// Figures 7 and 8 (Appendix C.2.2): impact of the sample size m, with
// δ fixed at log n.
//   m ∈ {√n, n/log n, 0.5n, n, 2n, n log n} for LSH-SS (and m_R = 1.5m for
//   RS(pop), as in the paper's protocol).
//   Figure 7: average absolute relative error; Figure 8: # τ with big error.
//
// Paper signatures: m < 0.5n causes serious underestimation in both
// algorithms; LSH-SS with m = n log n gives no large errors.

#include <cmath>
#include <iostream>

#include "bench_common.h"
#include "vsj/util/hash.h"

int main() {
  using namespace vsj;
  using namespace vsj::bench;

  const Scale scale = LoadScale(/*default_n=*/20000);
  Workbench bench =
      BuildWorkbench(DblpLikeConfig(scale.n, scale.seed), scale.k);
  const double n = static_cast<double>(bench.dataset.size());
  const double log_n = std::log2(n);

  struct Variant {
    std::string label;
    uint64_t m;
  };
  const std::vector<Variant> variants = {
      {"sqrt(n)", static_cast<uint64_t>(std::sqrt(n))},
      {"n/logn", static_cast<uint64_t>(n / log_n)},
      {"0.5n", static_cast<uint64_t>(0.5 * n)},
      {"n", static_cast<uint64_t>(n)},
      {"2n", static_cast<uint64_t>(2 * n)},
      {"nlogn", static_cast<uint64_t>(n * log_n)},
  };

  TablePrinter fig7("Figure 7: average relative error varying m (delta = logn)");
  fig7.SetHeader({"m", "LSH-SS", "RS(pop)"});
  TablePrinter fig8("Figure 8: # tau with big error (x10) varying m");
  fig8.SetHeader(
      {"m", "LSH-SS under", "LSH-SS over", "RS under", "RS over"});

  for (const Variant& variant : variants) {
    double err[2] = {0.0, 0.0};
    size_t big_under[2] = {0, 0};
    size_t big_over[2] = {0, 0};
    size_t defined = 0;

    EstimatorContext context = MakeContext(bench);
    context.lsh_ss.sample_size_h = variant.m;
    context.lsh_ss.sample_size_l = variant.m;
    context.random_pair.sample_size =
        static_cast<uint64_t>(1.5 * static_cast<double>(variant.m));
    auto lsh_ss = CreateEstimator("LSH-SS", context);
    auto rs = CreateEstimator("RS(pop)", context);
    const JoinSizeEstimator* estimators[2] = {lsh_ss.get(), rs.get()};

    for (double tau : StandardThresholds()) {
      const uint64_t true_j = bench.truth->JoinSize(tau);
      if (true_j == 0) continue;
      ++defined;
      for (int e = 0; e < 2; ++e) {
        const TrialSeries series =
            RunTrials(*estimators[e], tau, scale.trials,
                      HashCombine(scale.seed, variant.m * 17 + e));
        const ErrorStats stats = ComputeErrorStats(
            series.estimates, static_cast<double>(true_j));
        err[e] += stats.mean_absolute_relative_error;
        if (stats.mean_estimate == 0.0 ||
            static_cast<double>(true_j) / stats.mean_estimate >= 10.0) {
          ++big_under[e];
        }
        if (stats.mean_estimate / static_cast<double>(true_j) >= 10.0) {
          ++big_over[e];
        }
      }
    }
    const double denom = std::max<size_t>(defined, 1);
    fig7.AddRow({variant.label, TablePrinter::Fmt(err[0] / denom, 3),
                 TablePrinter::Fmt(err[1] / denom, 3)});
    fig8.AddRow({variant.label, std::to_string(big_under[0]),
                 std::to_string(big_over[0]), std::to_string(big_under[1]),
                 std::to_string(big_over[1])});
  }
  fig7.Print(std::cout);
  std::cout << "\n";
  fig8.Print(std::cout);
  return 0;
}
