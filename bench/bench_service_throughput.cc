// Throughput of the concurrent estimation service at 1, 2, 4 and 8 threads.
//
// Not a paper figure: this bench measures the engineering layer above the
// reproduction — EstimationService batch estimation and the parallel LSH
// index build — on the synthetic DBLP workload. For each thread count it
// builds the service (timing the ℓ-table index build), submits one batch of
// estimation requests sweeping τ with the cache disabled (so every request
// is computed, not memoized), and reports estimates/sec plus the speedup
// over the single-threaded run. It also cross-checks that every thread
// count produced bit-identical estimates, the service's determinism
// contract.
//
// Scale knobs (see bench_common.h): VSJ_N (corpus size, default 8000),
// VSJ_K (functions per table, default 20), VSJ_TRIALS (trials per request,
// default 4), VSJ_SEED.

#include <iostream>
#include <vector>

#include "bench/bench_common.h"
#include "vsj/service/estimation_service.h"
#include "vsj/util/timer.h"

namespace {

constexpr size_t kRequestsPerBatch = 64;

std::vector<vsj::EstimateRequest> MakeBatch(size_t trials, uint64_t seed) {
  const std::vector<double> taus = vsj::StandardThresholds();
  std::vector<vsj::EstimateRequest> batch;
  batch.reserve(kRequestsPerBatch);
  for (size_t i = 0; i < kRequestsPerBatch; ++i) {
    vsj::EstimateRequest request;
    request.estimator_name = "LSH-SS";
    request.tau = taus[i % taus.size()];
    request.trials = trials;
    request.seed = seed;
    batch.push_back(request);
  }
  return batch;
}

}  // namespace

int main() {
  const vsj::bench::Scale scale = vsj::bench::LoadScale(8000, 20, 4);
  std::cout << "service throughput bench: n = " << scale.n
            << ", k = " << scale.k << ", " << kRequestsPerBatch
            << " requests/batch, " << scale.trials << " trial(s)/request\n\n";

  const vsj::CorpusConfig config = vsj::DblpLikeConfig(scale.n, scale.seed);
  const std::vector<vsj::EstimateRequest> batch =
      MakeBatch(scale.trials, scale.seed);

  vsj::TablePrinter report("EstimationService batch throughput (LSH-SS, "
                           "synthetic dblp)");
  report.SetHeader({"threads", "index build s", "batch ms", "estimates/s",
                    "speedup"});

  std::vector<double> baseline;  // single-thread estimates, for determinism
  double single_thread_rate = 0.0;
  for (size_t threads : {1, 2, 4, 8}) {
    // Regenerate the corpus per run so every service builds from identical
    // inputs (the service takes ownership of its dataset).
    vsj::EstimationServiceOptions options;
    options.k = scale.k;
    options.num_threads = threads;
    options.family_seed = scale.seed ^ 0x5eedULL;
    options.enable_cache = false;
    vsj::EstimationService service(vsj::GenerateCorpus(config), options);

    vsj::Timer timer;
    const std::vector<vsj::EstimateResponse> responses =
        service.EstimateBatch(batch);
    const double batch_seconds = timer.ElapsedSeconds();
    const double rate =
        static_cast<double>(responses.size()) / batch_seconds;
    if (threads == 1) single_thread_rate = rate;

    std::vector<double> estimates;
    estimates.reserve(responses.size());
    for (const auto& response : responses) {
      estimates.push_back(response.mean_estimate);
    }
    if (threads == 1) {
      baseline = estimates;
    } else if (estimates != baseline) {
      std::cout << "DETERMINISM VIOLATION at " << threads << " threads\n";
      return 1;
    }

    report.AddRow({std::to_string(threads),
                   vsj::TablePrinter::Fmt(service.index_build_seconds(), 3),
                   vsj::TablePrinter::Fmt(batch_seconds * 1e3, 1),
                   vsj::TablePrinter::Fmt(rate, 1),
                   vsj::TablePrinter::Fmt(rate / single_thread_rate, 2) +
                       "x"});
  }
  report.Print(std::cout);
  std::cout << "\nall thread counts returned bit-identical estimates\n";
  return 0;
}
