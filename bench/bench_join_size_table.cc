// §6.2 inline table: the true join size J and its selectivity per
// threshold on the DBLP-like corpus.
//
// Paper values (DBLP, n = 794K):
//   τ:           0.1    0.3    0.5    0.7      0.9
//   J:           105B   267M   11M    103K     42K
//   selectivity: 33%    0.085% 0.0036% 6.4e-5% 1.3e-5%
// The signature to reproduce: J spans ~7 orders of magnitude over the
// threshold range, with a small-but-nonzero tail at τ = 0.9.

#include <iostream>

#include "bench_common.h"

int main() {
  using namespace vsj;
  using namespace vsj::bench;

  const Scale scale = LoadScale(/*default_n=*/20000);
  Workbench bench =
      BuildWorkbench(DblpLikeConfig(scale.n, scale.seed), scale.k);

  TablePrinter table("True join size and selectivity on " +
                     bench.config.name);
  table.SetHeader({"tau", "J", "selectivity"});
  for (double tau : StandardThresholds()) {
    const uint64_t j = bench.truth->JoinSize(tau);
    table.AddRow({TablePrinter::Fmt(tau, 1),
                  TablePrinter::Count(static_cast<double>(j)),
                  TablePrinter::Pct(bench.truth->Selectivity(tau), 6)});
  }
  table.Print(std::cout);
  std::cout << "# M = " << bench.dataset.NumPairs() << " total pairs\n";
  return 0;
}
