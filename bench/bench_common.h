// Shared harness of the reproduction benches (one binary per paper
// table/figure; see DESIGN.md §4).
//
// Every bench follows the same protocol as the paper's §6: build a corpus
// and a pre-built LSH index, compute exact ground truth once, run each
// estimator for R independent trials per threshold, and report
// over/under relative errors, STD and runtime. Scale knobs come from the
// environment:
//   VSJ_N       dataset size           (default: per-bench laptop scale)
//   VSJ_TRIALS  trials per data point  (default 50; paper: 100)
//   VSJ_SEED    corpus / RNG seed      (default 1)
//   VSJ_K       LSH functions per table (default: per-bench, usually 20)

#ifndef VSJ_BENCH_BENCH_COMMON_H_
#define VSJ_BENCH_BENCH_COMMON_H_

#include <memory>
#include <string>
#include <vector>

#include "vsj/core/estimator_registry.h"
#include "vsj/eval/experiment.h"
#include "vsj/eval/ground_truth.h"
#include "vsj/gen/workloads.h"
#include "vsj/lsh/lsh_index.h"
#include "vsj/lsh/simhash.h"
#include "vsj/util/table_printer.h"

namespace vsj::bench {

/// Scale parameters resolved from the environment.
struct Scale {
  size_t n;
  size_t trials;
  uint64_t seed;
  uint32_t k;
};

/// Reads VSJ_N / VSJ_TRIALS / VSJ_SEED / VSJ_K with the given defaults.
Scale LoadScale(size_t default_n, uint32_t default_k = 20,
                size_t default_trials = 50);

/// Everything a bench needs for one corpus.
struct Workbench {
  CorpusConfig config;
  VectorDataset dataset;
  std::unique_ptr<SimHashFamily> family;
  std::unique_ptr<LshIndex> index;
  std::unique_ptr<GroundTruth> truth;
  double index_build_seconds = 0.0;
  double ground_truth_seconds = 0.0;
};

/// Generates the corpus, builds `tables` LSH tables with `k` functions and
/// computes exact ground truth at the standard thresholds. Prints a short
/// provenance banner (dataset stats, timings) to stdout.
Workbench BuildWorkbench(CorpusConfig config, uint32_t k,
                         uint32_t tables = 1,
                         std::vector<double> taus = StandardThresholds());

/// Per-(estimator, τ) aggregation used by the accuracy figures.
struct AccuracyCell {
  std::string estimator;
  double tau = 0.0;
  double true_size = 0.0;
  ErrorStats stats;
  double mean_runtime_ms = 0.0;
  size_t num_unguaranteed = 0;
};

/// Runs `trials` independent estimates per (estimator, τ) and aggregates.
/// Thresholds where the true join size is 0 are skipped (relative error is
/// undefined there), mirroring the paper's protocol.
std::vector<AccuracyCell> RunAccuracyGrid(
    const Workbench& bench, const EstimatorContext& context,
    const std::vector<std::string>& estimator_names,
    const std::vector<double>& taus, size_t trials, uint64_t seed);

/// Prints the three panels of a paper accuracy figure (e.g. Figure 2):
/// (a) relative error of overestimation, (b) of underestimation, (c) STD.
void PrintAccuracyFigure(const std::string& figure_title,
                         const std::vector<AccuracyCell>& cells);

/// Prints mean estimation runtime per estimator (the §6.2 runtime text).
void PrintRuntimeSummary(const std::vector<AccuracyCell>& cells);

/// Default estimator context for a workbench.
EstimatorContext MakeContext(const Workbench& bench);

/// Machine-readable bench output: `--json <path>` on a bench's command line
/// (or the VSJ_BENCH_JSON environment variable) makes the bench write its
/// headline numbers as one JSON document, so CI can archive a BENCH_*.json
/// perf trajectory across PRs. Without a path every method is a no-op.
class BenchJson {
 public:
  /// Resolves the output path from argv (`--json <path>`) or
  /// VSJ_BENCH_JSON; `bench_name` is recorded in the document.
  BenchJson(int argc, char** argv, const std::string& bench_name);

  bool enabled() const { return !path_.empty(); }

  /// Records one measurement. `name` identifies the series ("static_build",
  /// ...), `unit` its unit ("ms", "mutations_per_sec"), `iterations` how
  /// many repetitions produced `value`.
  void Add(const std::string& name, const std::string& unit, double value,
           size_t iterations);

  /// Captures the global MetricRegistry as a "metrics" section of the
  /// document (counters, gauges, histogram percentiles). Call after the
  /// measured work, before Write(). A no-op without an output path or when
  /// metrics never recorded anything.
  void AddMetricsSnapshot();

  /// Writes the document; returns false (after printing to stderr) when the
  /// file cannot be written. Call once at the end of main.
  bool Write() const;

 private:
  struct Record {
    std::string name;
    std::string unit;
    double value;
    size_t iterations;
  };
  std::string bench_name_;
  std::string path_;
  std::vector<Record> records_;
  std::string metrics_json_;  // serialized registry snapshot, may be empty
};

}  // namespace vsj::bench

#endif  // VSJ_BENCH_BENCH_COMMON_H_
