// Appendix B.2.2 (extension): non-self join estimation between two
// collections U and V, comparing general LSH-SS against general RS(pop) and
// exact ground truth (brute force, feasible at bench scale).

#include <iostream>

#include "bench_common.h"
#include "vsj/core/general_join.h"
#include "vsj/join/brute_force_join.h"
#include "vsj/util/hash.h"

int main() {
  using namespace vsj;
  using namespace vsj::bench;

  const Scale scale = LoadScale(/*default_n=*/3000, /*default_k=*/10,
                                /*default_trials=*/30);

  // Two overlapping collections: same generator family, different seeds,
  // plus a shared near-duplicate core via a common seed block.
  CorpusConfig left_config = DblpLikeConfig(scale.n, scale.seed);
  left_config.cluster_fraction = 0.15;
  CorpusConfig right_config = DblpLikeConfig(scale.n, scale.seed);
  right_config.cluster_fraction = 0.15;
  right_config.seed = scale.seed;  // same seed → overlapping content
  VectorDataset left = GenerateCorpus(left_config);
  VectorDataset right = GenerateCorpus(right_config);

  SimHashFamily family(scale.seed ^ 0xfeed);
  LshTable left_table(family, left, scale.k);
  LshTable right_table(family, right, scale.k);

  GeneralLshSsEstimator lsh_ss(left, right, left_table, right_table,
                               SimilarityMeasure::kCosine);
  GeneralRandomPairSampling rs(left, right, SimilarityMeasure::kCosine);

  std::cout << "# general join: |U| = " << left.size() << ", |V| = "
            << right.size() << ", N_H = " << lsh_ss.NumSameBucketPairs()
            << " of " << lsh_ss.NumTotalPairs() << " pairs\n\n";

  TablePrinter table("Appendix B.2.2: general (non-self) join estimation");
  table.SetHeader({"tau", "true J", "LSH-SS mean est", "LSH-SS |err|",
                   "RS mean est", "RS |err|"});
  for (double tau : {0.3, 0.5, 0.7, 0.9}) {
    const uint64_t true_j = BruteForceGeneralJoinSize(
        left, right, SimilarityMeasure::kCosine, tau);
    if (true_j == 0) continue;
    std::vector<std::string> row = {
        TablePrinter::Fmt(tau, 1),
        TablePrinter::Count(static_cast<double>(true_j))};
    for (const JoinSizeEstimator* est :
         {static_cast<const JoinSizeEstimator*>(&lsh_ss),
          static_cast<const JoinSizeEstimator*>(&rs)}) {
      const TrialSeries series = RunTrials(
          *est, tau, scale.trials,
          HashCombine(scale.seed, static_cast<uint64_t>(tau * 1000)));
      const ErrorStats stats = ComputeErrorStats(
          series.estimates, static_cast<double>(true_j));
      row.push_back(TablePrinter::Count(stats.mean_estimate));
      row.push_back(
          TablePrinter::Pct(stats.mean_absolute_relative_error));
    }
    table.AddRow(std::move(row));
  }
  table.Print(std::cout);
  return 0;
}
