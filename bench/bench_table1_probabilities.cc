// Table 1 (§5): exact probabilities P(T), P(T|H), P(H|T), P(T|L) per
// similarity threshold on the DBLP-like corpus.
//
// Paper values (DBLP, n = 794K, k = 20) for the shape comparison:
//   τ=0.1: P(T)=.082     P(T|H)=0.31  P(H|T)=0.00001  P(T|L)=.082
//   τ=0.5: P(T)=3.4e-6   P(T|H)=0.049 P(H|T)=0.0028   P(T|L)=3.2e-5*
//   τ=0.9: P(T)=9.1e-8   P(T|H)=0.040 P(H|T)=0.86     P(T|L)=1.3e-8
// The key signatures to reproduce: P(T) collapses with τ, P(T|H) stays
// orders of magnitude above P(T) at high τ, and P(H|T) grows with τ.

#include <iostream>

#include "bench_common.h"
#include "vsj/eval/probability_profile.h"

int main() {
  using namespace vsj;
  using namespace vsj::bench;

  const Scale scale = LoadScale(/*default_n=*/20000, /*default_k=*/20);
  Workbench bench =
      BuildWorkbench(DblpLikeConfig(scale.n, scale.seed), scale.k);

  const auto rows =
      ComputeProbabilityProfile(bench.dataset, bench.index->table(0),
                                SimilarityMeasure::kCosine, *bench.truth);
  const TheoremThresholds limits =
      ComputeTheoremThresholds(bench.dataset.size());

  TablePrinter table("Table 1: probabilities on " + bench.config.name +
                     " (k = " + std::to_string(scale.k) + ")");
  table.SetHeader({"tau", "P(T)", "P(T|H)=alpha", "P(H|T)", "P(T|L)=beta",
                   "J"});
  for (const ProbabilityRow& row : rows) {
    table.AddRow({TablePrinter::Fmt(row.tau, 1),
                  TablePrinter::Sci(row.p_true),
                  TablePrinter::Sci(row.p_true_given_h),
                  TablePrinter::Sci(row.p_h_given_true),
                  TablePrinter::Sci(row.p_true_given_l),
                  TablePrinter::Count(static_cast<double>(row.join_size))});
  }
  table.Print(std::cout);
  std::cout << "\n# theorem reference levels: log2(n)/n = "
            << TablePrinter::Sci(limits.alpha_floor)
            << ", 1/n = " << TablePrinter::Sci(limits.beta_high_ceiling)
            << "\n";
  std::cout << "# N_H = " << bench.index->table(0).NumSameBucketPairs()
            << " same-bucket pairs of " << bench.dataset.NumPairs()
            << " total pairs\n";
  return 0;
}
