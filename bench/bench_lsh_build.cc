// LSH index-build microbench: the pre-PR hashing/grouping path vs. the
// vectorized build (Gaussian projection cache + SIMD lane kernels + sort-
// based bucket grouping into the CSR bucket arena).
//
// Not a paper figure: this pins the hot-path vectorization claim. The
// baseline is a faithful replica of the historical build kept inside this
// bench — per-call scratch allocations, a Box–Muller Gaussian derived for
// every (feature, function) pair, and unordered_map bucket grouping into
// per-bucket vectors. Both paths run over the same corpus and the bench
// *asserts* they produce identical bucket keys and bucket structure before
// reporting: the speedup is only meaningful because the output is
// bit-identical. A third row forces the scalar kernels (the projection
// cache stays on), isolating the SIMD contribution from the memoization.
//
// Scale knobs: VSJ_N (corpus size, default 20000), VSJ_K (functions per
// table, default 10), VSJ_TABLES (tables, default 10), VSJ_ITERS (best-of
// repetitions, default 3 — CI smoke runs set 1), VSJ_SEED. `--json <path>`
// (or VSJ_BENCH_JSON) writes BENCH_lsh_build-style JSON.

#include <algorithm>
#include <cstdint>
#include <iostream>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "bench/bench_common.h"
#include "vsj/lsh/lsh_table.h"
#include "vsj/util/cpu.h"
#include "vsj/util/env.h"
#include "vsj/util/hash.h"
#include "vsj/util/timer.h"
#include "vsj/vector/dataset_view.h"

namespace {

using vsj::DatasetView;
using vsj::Feature;
using vsj::VectorId;
using vsj::VectorRef;

/// The pre-vectorization SimHashFamily::HashRange, verbatim: two scratch
/// vectors allocated per call, one hash-derived Gaussian per
/// (feature, function) pair.
void BaselineHashRange(uint64_t mixed_seed, VectorRef v,
                       uint32_t function_offset, uint32_t k, uint64_t* out) {
  std::vector<double> projections(k, 0.0);
  std::vector<uint64_t> fn_seeds(k);
  for (uint32_t j = 0; j < k; ++j) {
    fn_seeds[j] = vsj::HashCombine(mixed_seed, function_offset + j);
  }
  for (const Feature f : v) {
    for (uint32_t j = 0; j < k; ++j) {
      projections[j] += f.weight * vsj::GaussianFromHash(f.dim, fn_seeds[j]);
    }
  }
  for (uint32_t j = 0; j < k; ++j) out[j] = projections[j] >= 0.0 ? 1 : 0;
}

/// The pre-vectorization bucket build: hash-map grouping into per-bucket
/// vectors (the structure LshTable now derives from the CSR arena).
struct BaselineTable {
  std::vector<std::vector<VectorId>> buckets;
  std::vector<uint64_t> bucket_keys;
  std::vector<uint32_t> bucket_of;
};

BaselineTable BaselineBuildTable(uint64_t mixed_seed, DatasetView dataset,
                                 uint32_t k, uint32_t function_offset,
                                 std::vector<uint64_t>* keys_out) {
  const size_t n = dataset.size();
  std::vector<uint64_t> keys(n);
  std::vector<uint64_t> signature(k);
  for (VectorId id = 0; id < n; ++id) {
    BaselineHashRange(mixed_seed, dataset[id], function_offset, k,
                      signature.data());
    uint64_t key = 0x2545f4914f6cdd1dULL;
    for (uint32_t j = 0; j < k; ++j) {
      key = vsj::HashCombine(key, signature[j]);
    }
    keys[id] = key;
  }

  BaselineTable table;
  table.bucket_of.resize(n);
  std::unordered_map<uint64_t, uint32_t> key_to_bucket;
  key_to_bucket.reserve(n);
  for (VectorId id = 0; id < n; ++id) {
    auto [it, inserted] = key_to_bucket.try_emplace(
        keys[id], static_cast<uint32_t>(table.buckets.size()));
    if (inserted) {
      table.buckets.emplace_back();
      table.bucket_keys.push_back(keys[id]);
    }
    table.buckets[it->second].push_back(id);
    table.bucket_of[id] = it->second;
  }
  *keys_out = std::move(keys);
  return table;
}

}  // namespace

int main(int argc, char** argv) {
  const vsj::bench::Scale scale = vsj::bench::LoadScale(20000, 10);
  const auto tables = static_cast<uint32_t>(vsj::EnvInt64("VSJ_TABLES", 10));
  const auto iters = static_cast<size_t>(vsj::EnvInt64("VSJ_ITERS", 3));
  vsj::bench::BenchJson json(argc, argv, "bench_lsh_build");

  std::cout << "lsh build bench: n = " << scale.n << ", k = " << scale.k
            << ", " << tables << " table(s), best of " << iters
            << " iteration(s); kernels dispatch to "
            << vsj::SimdLevelName(vsj::ActiveSimdLevel()) << "\n";

  const vsj::VectorDataset dataset =
      vsj::GenerateCorpus(vsj::DblpLikeConfig(scale.n, scale.seed));
  const vsj::DatasetStats stats = dataset.ComputeStats();
  std::cout << "corpus: " << stats.num_vectors << " vectors, "
            << stats.num_dimensions << " dims, avg " << stats.avg_features
            << " features\n\n";

  const uint64_t family_seed = scale.seed ^ 0x5eedULL;
  const vsj::SimHashFamily family(family_seed);
  const uint64_t mixed_seed = vsj::Mix64(family_seed);
  const DatasetView view(dataset);

  // --- Baseline: the historical build, replicated above. ---
  double baseline_best = 1e300;
  std::vector<BaselineTable> baseline_tables(tables);
  std::vector<std::vector<uint64_t>> baseline_keys(tables);
  for (size_t it = 0; it < iters; ++it) {
    vsj::Timer timer;
    for (uint32_t t = 0; t < tables; ++t) {
      baseline_tables[t] = BaselineBuildTable(mixed_seed, view, scale.k,
                                              t * scale.k, &baseline_keys[t]);
    }
    baseline_best = std::min(baseline_best, timer.ElapsedSeconds());
  }

  // --- Vectorized: the production LshIndex build (projection cache + SIMD
  // kernels + sort grouper), plus a scalar-kernel run isolating SIMD. ---
  auto measure_index = [&](vsj::SimdLevel level) {
    vsj::SetSimdLevelForTest(level);
    double best = 1e300;
    std::unique_ptr<vsj::LshIndex> index;
    for (size_t it = 0; it < iters; ++it) {
      vsj::Timer timer;
      index = std::make_unique<vsj::LshIndex>(family, view, scale.k, tables);
      best = std::min(best, timer.ElapsedSeconds());
    }
    vsj::ResetSimdLevelForTest();
    return std::pair{best, std::move(index)};
  };
  auto [vector_best, index] = measure_index(vsj::ActiveSimdLevel());
  auto [scalar_best, scalar_index] = measure_index(vsj::SimdLevel::kScalar);

  // --- Bit-identity: the speedup only counts if the output is the same
  // index the baseline would have built. ---
  for (uint32_t t = 0; t < tables; ++t) {
    const vsj::LshTable& built = index->table(t);
    const BaselineTable& expected = baseline_tables[t];
    if (built.num_buckets() != expected.buckets.size()) {
      std::cerr << "FATAL: table " << t << " bucket count diverged\n";
      return 1;
    }
    for (size_t b = 0; b < built.num_buckets(); ++b) {
      const auto members = built.bucket(b);
      if (built.BucketKey(b) != expected.bucket_keys[b] ||
          !std::equal(members.begin(), members.end(),
                      expected.buckets[b].begin(),
                      expected.buckets[b].end())) {
        std::cerr << "FATAL: table " << t << " bucket " << b << " diverged\n";
        return 1;
      }
    }
    if (built.NumSameBucketPairs() !=
        scalar_index->table(t).NumSameBucketPairs()) {
      std::cerr << "FATAL: scalar and SIMD builds diverged\n";
      return 1;
    }
  }
  std::cout << "bit-identity: all " << tables
            << " tables match the baseline build exactly\n\n";

  vsj::TablePrinter report("Static index build (" + std::to_string(scale.n) +
                           " vectors, k = " + std::to_string(scale.k) +
                           ", " + std::to_string(tables) + " tables)");
  report.SetHeader({"path", "build ms", "speedup"});
  auto ms = [](double seconds) { return vsj::TablePrinter::Fmt(seconds * 1e3, 1); };
  report.AddRow({"baseline (alloc + per-pair gaussians + hash-map)",
                 ms(baseline_best), "1.00x"});
  report.AddRow({"vectorized, scalar kernels (cache + sort grouper)",
                 ms(scalar_best),
                 vsj::TablePrinter::Fmt(baseline_best / scalar_best, 2) + "x"});
  report.AddRow({std::string("vectorized, ") +
                     vsj::SimdLevelName(vsj::ActiveSimdLevel()) + " kernels",
                 ms(vector_best),
                 vsj::TablePrinter::Fmt(baseline_best / vector_best, 2) + "x"});
  report.Print(std::cout);

  json.Add("static_build_baseline", "ms", baseline_best * 1e3, iters);
  json.Add("static_build_scalar_kernels", "ms", scalar_best * 1e3, iters);
  json.Add(std::string("static_build_") +
               vsj::SimdLevelName(vsj::ActiveSimdLevel()) + "_kernels",
           "ms", vector_best * 1e3, iters);
  json.Add("static_build_speedup", "x", baseline_best / vector_best, iters);
  json.AddMetricsSnapshot();
  if (!json.Write()) return 1;
  std::cout << "\nper-build wall time is the unit (1-core dev containers "
               "show no parallel speedup); baseline replica is pre-PR code\n";
  return 0;
}
