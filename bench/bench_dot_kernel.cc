// Dot-kernel microbench: per-pair cost of SparseVector::Dot over the old
// per-vector heap layout vs. the columnar CSR arena, plus the galloping
// merge on skewed pairs.
//
// Not a paper figure: this pins down the storage-core claim of the
// columnar refactor. Layout A holds each vector as an individually
// heap-allocated SparseVector (the pre-refactor representation: every Dot
// chases two fresh pointers); layout B reads the same payloads from one
// contiguous CsrStorage arena through VectorRefs. Both run the identical
// kernel over the identical pair list, so the delta is purely memory
// layout. A third section isolates the galloping merge by timing skewed
// pairs (small · ratio = large) at ratios 1/8/64 against the arena.
//
// Scale knobs: VSJ_N (corpus size, default 4000), VSJ_PAIRS (pairs per
// measurement, default 200000), VSJ_ITERS (measurement repetitions,
// default 3 — CI smoke runs set 1), VSJ_SEED. `--json <path>` (or
// VSJ_BENCH_JSON) writes the headline numbers as JSON.

#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "vsj/util/cpu.h"
#include "vsj/util/env.h"
#include "vsj/util/rng.h"
#include "vsj/util/timer.h"
#include "vsj/vector/csr_storage.h"
#include "vsj/vector/dataset_view.h"
#include "vsj/vector/pair_eval.h"

namespace {

using vsj::VectorId;
using vsj::VectorRef;

struct PairList {
  std::vector<VectorId> first;
  std::vector<VectorId> second;
};

PairList SamplePairs(size_t n, size_t count, uint64_t seed) {
  PairList pairs;
  pairs.first.reserve(count);
  pairs.second.reserve(count);
  vsj::Rng rng(seed);
  for (size_t i = 0; i < count; ++i) {
    const auto u = static_cast<VectorId>(rng.Below(n));
    auto v = static_cast<VectorId>(rng.Below(n - 1));
    if (v >= u) ++v;
    pairs.first.push_back(u);
    pairs.second.push_back(v);
  }
  return pairs;
}

/// Runs `iters` passes of Dot over the pair list, resolving vectors via
/// `ref_of`, and returns the best-of ns/pair (plus the checksum so the
/// work cannot be optimized away).
template <typename RefOf>
std::pair<double, double> MeasureDot(const PairList& pairs, size_t iters,
                                     RefOf&& ref_of) {
  double checksum = 0.0;
  double best_seconds = 1e300;
  for (size_t it = 0; it < iters; ++it) {
    vsj::Timer timer;
    double sum = 0.0;
    for (size_t i = 0; i < pairs.first.size(); ++i) {
      sum += ref_of(pairs.first[i]).Dot(ref_of(pairs.second[i]));
    }
    best_seconds = std::min(best_seconds, timer.ElapsedSeconds());
    checksum = sum;
  }
  const double ns_per_pair =
      best_seconds * 1e9 / static_cast<double>(pairs.first.size());
  return {ns_per_pair, checksum};
}

/// Builds a cache-resident arena of `copies` (small, large) pairs whose
/// dims are drawn from [0, vocab) — vocab controls intersection density —
/// plus the aligned pair list addressing them.
struct BatchArena {
  vsj::CsrStorage storage;
  PairList pairs;
};

BatchArena BuildBatchArena(size_t small_size, size_t large_size, size_t vocab,
                           size_t num_pairs, uint64_t seed) {
  BatchArena arena;
  vsj::Rng rng(seed);
  const size_t copies = 512;
  for (size_t c = 0; c < copies; ++c) {
    std::vector<vsj::DimId> small_dims, large_dims;
    for (size_t i = 0; i < small_size; ++i) {
      small_dims.push_back(static_cast<vsj::DimId>(rng.Below(vocab)));
    }
    for (size_t i = 0; i < large_size; ++i) {
      large_dims.push_back(static_cast<vsj::DimId>(rng.Below(vocab)));
    }
    arena.storage.Append(vsj::SparseVector::FromDims(small_dims).ref());
    arena.storage.Append(vsj::SparseVector::FromDims(large_dims).ref());
  }
  for (size_t i = 0; i < num_pairs; ++i) {
    const auto c = static_cast<VectorId>(2 * (i % copies));
    arena.pairs.first.push_back(c);
    arena.pairs.second.push_back(c + 1);
  }
  return arena;
}

/// ns/pair of CountPairsAtOrAbove over the arena's pair list at the
/// *currently installed* SIMD level, best of `iters`, plus the hit count
/// (the cross-level bit-identity check of the batched section).
std::pair<double, uint64_t> MeasureBatched(const BatchArena& arena,
                                           size_t iters, double tau) {
  const vsj::DatasetView view(arena.storage);
  uint64_t hits = 0;
  double best_seconds = 1e300;
  for (size_t it = 0; it < iters; ++it) {
    vsj::Timer timer;
    hits = vsj::CountPairsAtOrAbove(
        vsj::SimilarityMeasure::kCosine, view, arena.pairs.first.data(),
        arena.pairs.second.data(), arena.pairs.first.size(), tau,
        vsj::kPairPrefetchDistance);
    best_seconds = std::min(best_seconds, timer.ElapsedSeconds());
  }
  const double ns_per_pair =
      best_seconds * 1e9 / static_cast<double>(arena.pairs.first.size());
  return {ns_per_pair, hits};
}

/// The SIMD levels this host can run, widest-first for the table.
std::vector<vsj::SimdLevel> BenchLevels() {
  std::vector<vsj::SimdLevel> levels;
  const vsj::SimdLevel max = vsj::DetectSimdLevel();
  if (max >= vsj::SimdLevel::kAvx2) levels.push_back(vsj::SimdLevel::kAvx2);
  if (max >= vsj::SimdLevel::kSse2) levels.push_back(vsj::SimdLevel::kSse2);
  levels.push_back(vsj::SimdLevel::kScalar);
  return levels;
}

/// The pre-gallop linear merge, for the skew comparison column.
double LinearDot(VectorRef a, VectorRef b) {
  double sum = 0.0;
  size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a.dim(i) < b.dim(j)) {
      ++i;
    } else if (a.dim(i) > b.dim(j)) {
      ++j;
    } else {
      sum += static_cast<double>(a.weight(i)) * b.weight(j);
      ++i;
      ++j;
    }
  }
  return sum;
}

}  // namespace

int main(int argc, char** argv) {
  const vsj::bench::Scale scale = vsj::bench::LoadScale(4000);
  vsj::bench::BenchJson json(argc, argv, "bench_dot_kernel");
  const auto num_pairs =
      static_cast<size_t>(vsj::EnvInt64("VSJ_PAIRS", 200000));
  const auto iters = static_cast<size_t>(vsj::EnvInt64("VSJ_ITERS", 3));
  std::cout << "dot kernel bench: n = " << scale.n << ", " << num_pairs
            << " pairs, best of " << iters << " iteration(s)\n";

  const vsj::VectorDataset dataset =
      vsj::GenerateCorpus(vsj::DblpLikeConfig(scale.n, scale.seed));
  const vsj::DatasetStats stats = dataset.ComputeStats();
  std::cout << "corpus: " << stats.num_vectors << " vectors, avg "
            << stats.avg_features << " features\n\n";

  // Layout A: one heap-allocated SparseVector per vector (the pre-columnar
  // representation — header array contiguous, payloads scattered).
  std::vector<vsj::SparseVector> scattered;
  scattered.reserve(dataset.size());
  for (VectorRef v : vsj::DatasetView(dataset)) {
    scattered.emplace_back(v);
  }
  // Layout B: the contiguous arena the dataset already owns.
  const vsj::CsrStorage& arena = dataset.storage();

  const PairList pairs = SamplePairs(dataset.size(), num_pairs, scale.seed);

  const auto [old_ns, old_sum] = MeasureDot(
      pairs, iters, [&](VectorId id) { return scattered[id].ref(); });
  const auto [csr_ns, csr_sum] =
      MeasureDot(pairs, iters, [&](VectorId id) { return arena.Ref(id); });
  if (old_sum != csr_sum) {
    std::cerr << "FATAL: layouts disagree (" << old_sum << " vs " << csr_sum
              << ")\n";
    return 1;
  }

  vsj::TablePrinter layout("Dot cost by storage layout (identical pairs)");
  layout.SetHeader({"layout", "ns/pair", "vs per-vector"});
  layout.AddRow({"per-vector heap", vsj::TablePrinter::Fmt(old_ns, 1), "1.00x"});
  layout.AddRow({"CSR arena", vsj::TablePrinter::Fmt(csr_ns, 1),
                 vsj::TablePrinter::Fmt(old_ns / csr_ns, 2) + "x"});
  layout.Print(std::cout);
  json.Add("dot_per_vector_heap", "ns_per_pair", old_ns, iters);
  json.Add("dot_csr_arena", "ns_per_pair", csr_ns, iters);

  // Skewed pairs: small vectors dotted against ratio-times-longer ones;
  // ratios >= 8 take the galloping path.
  std::cout << "\n";
  vsj::TablePrinter skew("Skewed-pair Dot (small size 32, CSR arena)");
  skew.SetHeader({"size ratio", "merge", "ns/pair", "linear ns/pair"});
  for (const size_t ratio : {size_t{1}, size_t{8}, size_t{64}}) {
    vsj::CsrStorage skew_arena;
    vsj::Rng rng(scale.seed ^ ratio);
    const size_t small_size = 32;
    const size_t vocab = 4 * small_size * ratio;
    const size_t copies = 512;
    for (size_t c = 0; c < copies; ++c) {
      std::vector<vsj::DimId> small_dims, large_dims;
      for (size_t i = 0; i < small_size; ++i) {
        small_dims.push_back(static_cast<vsj::DimId>(rng.Below(vocab)));
      }
      for (size_t i = 0; i < small_size * ratio; ++i) {
        large_dims.push_back(static_cast<vsj::DimId>(rng.Below(vocab)));
      }
      skew_arena.Append(vsj::SparseVector::FromDims(small_dims).ref());
      skew_arena.Append(vsj::SparseVector::FromDims(large_dims).ref());
    }
    PairList skew_pairs;
    for (size_t i = 0; i < num_pairs / 8; ++i) {
      const auto c = static_cast<VectorId>(2 * (i % copies));
      skew_pairs.first.push_back(c);
      skew_pairs.second.push_back(c + 1);
    }
    const auto [ns, sum] = MeasureDot(
        skew_pairs, iters, [&](VectorId id) { return skew_arena.Ref(id); });
    double linear_checksum = 0.0;
    double linear_best = 1e300;
    for (size_t it = 0; it < iters; ++it) {
      vsj::Timer timer;
      double s = 0.0;
      for (size_t i = 0; i < skew_pairs.first.size(); ++i) {
        s += LinearDot(skew_arena.Ref(skew_pairs.first[i]),
                       skew_arena.Ref(skew_pairs.second[i]));
      }
      linear_best = std::min(linear_best, timer.ElapsedSeconds());
      linear_checksum = s;
    }
    if (sum != linear_checksum) {
      std::cerr << "FATAL: gallop and linear merges disagree\n";
      return 1;
    }
    const double linear_ns = linear_best * 1e9 /
                             static_cast<double>(skew_pairs.first.size());
    skew.AddRow({std::to_string(ratio) + ":1",
                 ratio >= vsj::kGallopRatio ? "gallop" : "linear",
                 vsj::TablePrinter::Fmt(ns, 1),
                 vsj::TablePrinter::Fmt(linear_ns, 1)});
    json.Add("dot_skew_" + std::to_string(ratio) + "to1", "ns_per_pair", ns,
             iters);
  }
  skew.Print(std::cout);

  // Batched pair evaluation (CountPairsAtOrAbove → EvaluatePairBatch): the
  // path the estimators actually run, measured per dispatched level over the
  // skew ratios and an intersection-density sweep. dense_14 mirrors the
  // dblp-like common case (the AVX2 full-residency rung); the 32-dim rows
  // sweep density at the 17..32 rung; skew >= 8 takes the gallop at every
  // level. Hit counts must agree across levels — bit-identity is what makes
  // the level a pure throughput knob.
  struct BatchedRow {
    const char* name;
    size_t small, large, vocab;
  };
  const BatchedRow batched_rows[] = {
      {"skew_1to1", 32, 32, 4 * 32},
      {"skew_8to1", 32, 256, 4 * 256},
      {"skew_64to1", 32, 2048, 4 * 2048},
      {"density_dense_14", 14, 14, 28},
      {"density_dense_32", 32, 32, 64},
      {"density_mid_32", 32, 32, 256},
      {"density_sparse_32", 32, 32, 2048},
  };
  const std::vector<vsj::SimdLevel> levels = BenchLevels();
  std::cout << "\n";
  vsj::TablePrinter batched("Batched pair evaluation by SIMD level");
  std::vector<std::string> header = {"row", "pair shape"};
  for (const vsj::SimdLevel level : levels) {
    header.push_back(std::string(vsj::SimdLevelName(level)) + " ns/pair");
  }
  header.push_back("best vs scalar");
  batched.SetHeader(header);
  for (const BatchedRow& row : batched_rows) {
    const BatchArena arena = BuildBatchArena(
        row.small, row.large, row.vocab, num_pairs / 8, scale.seed ^ row.vocab);
    std::vector<std::string> cells = {
        row.name, std::to_string(row.small) + "x" + std::to_string(row.large)};
    double scalar_ns = 0.0, best_ns = 1e300;
    uint64_t reference_hits = 0;
    bool first_level = true;
    for (const vsj::SimdLevel level : levels) {
      vsj::SetSimdLevel(level);
      const auto [ns, hits] = MeasureBatched(arena, iters, 0.5);
      vsj::ResetSimdLevel();
      if (first_level) {
        reference_hits = hits;
        first_level = false;
      } else if (hits != reference_hits) {
        std::cerr << "FATAL: batched hit counts diverge across levels ("
                  << row.name << ": " << hits << " vs " << reference_hits
                  << ")\n";
        return 1;
      }
      if (level == vsj::SimdLevel::kScalar) scalar_ns = ns;
      best_ns = std::min(best_ns, ns);
      cells.push_back(vsj::TablePrinter::Fmt(ns, 1));
      json.Add(std::string("batched_") + row.name + "_" +
                   vsj::SimdLevelName(level),
               "ns_per_pair", ns, iters);
    }
    cells.push_back(vsj::TablePrinter::Fmt(scalar_ns / best_ns, 2) + "x");
    batched.AddRow(cells);
  }
  batched.Print(std::cout);
  json.AddMetricsSnapshot();
  if (!json.Write()) return 1;
  std::cout << "\nper-pair cost is the paper-relevant unit (1-core dev "
               "containers show no parallel speedup)\n";
  return 0;
}
