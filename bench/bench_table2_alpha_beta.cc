// Table 2 (Appendix C): α = P(T|H) and β = P(T|L) per threshold on the
// NYT-like and PUBMED-like corpora, with the high/low-threshold reference
// levels of the §5.2 analysis.
//
// Paper signatures: α stays orders of magnitude above log n/n on NYT
// (α ≈ 0.7 across the range) and PUBMED (α ≈ 1e-4), while β drops below
// 1/n at high thresholds.

#include <iostream>

#include "bench_common.h"
#include "vsj/eval/probability_profile.h"

namespace {

void ProfileCorpus(const vsj::CorpusConfig& config, uint32_t k) {
  using namespace vsj;
  using namespace vsj::bench;
  Workbench bench = BuildWorkbench(config, k);
  const auto rows =
      ComputeProbabilityProfile(bench.dataset, bench.index->table(0),
                                SimilarityMeasure::kCosine, *bench.truth);
  const TheoremThresholds limits =
      ComputeTheoremThresholds(bench.dataset.size());

  TablePrinter table("Table 2: alpha/beta on " + bench.config.name +
                     " (k = " + std::to_string(k) + ")");
  table.SetHeader({"tau", "alpha=P(T|H)", "beta=P(T|L)", "J"});
  for (const ProbabilityRow& row : rows) {
    table.AddRow({TablePrinter::Fmt(row.tau, 1),
                  TablePrinter::Sci(row.p_true_given_h),
                  TablePrinter::Sci(row.p_true_given_l),
                  TablePrinter::Count(static_cast<double>(row.join_size))});
  }
  table.AddRow({"high th. levels", TablePrinter::Sci(limits.alpha_floor),
                TablePrinter::Sci(limits.beta_high_ceiling), ""});
  table.AddRow({"low th. levels", TablePrinter::Sci(limits.alpha_floor),
                TablePrinter::Sci(limits.alpha_floor), ""});
  table.Print(std::cout);
  std::cout << "\n";
}

}  // namespace

int main() {
  using namespace vsj;
  using namespace vsj::bench;
  const Scale scale = LoadScale(/*default_n=*/6000, /*default_k=*/20);
  ProfileCorpus(NytLikeConfig(scale.n, scale.seed), scale.k);
  // Appendix C.4 runs PUBMED with k = 5.
  ProfileCorpus(PubmedLikeConfig(scale.n, scale.seed + 1), 5);
  return 0;
}
