// Appendix B.1 (extension): the Optimal-k Problem (Definition 4).
//
// Sweeps k, reporting the estimated precision α = P(T|H) and recall
// P(H|T) trade-off the appendix describes (larger k → higher precision,
// lower recall), then runs the FindOptimalK search for a target (ε, p) and
// reports the chosen k. Also validates the appendix's closing remark that
// "slightly smaller k values, say between 5 and 15, generally give better
// accuracy" by scoring LSH-SS at each probed k.

#include <iostream>

#include "bench_common.h"
#include "vsj/core/optimal_k.h"
#include "vsj/eval/probability_profile.h"
#include "vsj/util/hash.h"

int main() {
  using namespace vsj;
  using namespace vsj::bench;

  const Scale scale = LoadScale(/*default_n=*/10000, /*default_k=*/20,
                                /*default_trials=*/30);
  Workbench bench =
      BuildWorkbench(DblpLikeConfig(scale.n, scale.seed), scale.k);
  const double tau = 0.8;
  const double true_j = static_cast<double>(bench.truth->JoinSize(tau));

  TablePrinter table("Appendix B.1: precision/recall/accuracy vs k at tau " +
                     TablePrinter::Fmt(tau, 1));
  table.SetHeader({"k", "alpha=P(T|H)", "P(H|T)", "N_H",
                   "LSH-SS |rel err|"});
  for (uint32_t k : {4u, 6u, 8u, 10u, 15u, 20u, 30u}) {
    LshIndex index(*bench.family, bench.dataset, k, 1);
    const auto rows = ComputeProbabilityProfile(
        bench.dataset, index.table(0), SimilarityMeasure::kCosine,
        *bench.truth);
    double alpha = 0.0, recall = 0.0;
    for (const ProbabilityRow& row : rows) {
      if (row.tau == tau) {
        alpha = row.p_true_given_h;
        recall = row.p_h_given_true;
      }
    }
    std::string err = "-";
    if (true_j > 0.0) {
      LshSsEstimator est(bench.dataset, index.table(0),
                         SimilarityMeasure::kCosine);
      const TrialSeries series =
          RunTrials(est, tau, scale.trials, HashCombine(scale.seed, k));
      const ErrorStats stats =
          ComputeErrorStats(series.estimates, true_j);
      err = TablePrinter::Pct(stats.mean_absolute_relative_error);
    }
    table.AddRow({std::to_string(k), TablePrinter::Sci(alpha),
                  TablePrinter::Sci(recall),
                  std::to_string(index.table(0).NumSameBucketPairs()), err});
  }
  table.Print(std::cout);

  // The search of Definition 4 with a concrete (ε, p) target.
  const double epsilon = 0.5;
  const double probability = 0.95;
  const double rho =
      PrecisionFloor(epsilon, probability, bench.dataset.size());
  Rng rng(scale.seed);
  const OptimalKResult result = FindOptimalK(
      bench.dataset, *bench.family, tau, rho, rng,
      {.min_k = 2, .max_k = 40, .samples_per_k = 4000, .step = 2});
  std::cout << "\n# Definition 4 search: epsilon = " << epsilon
            << ", p = " << probability
            << " -> rho = " << TablePrinter::Sci(rho) << "; optimal k = ";
  if (result.best_k != 0) {
    std::cout << result.best_k << " (alpha = "
              << TablePrinter::Sci(result.probed.back().alpha) << ")\n";
  } else {
    std::cout << "not found within the probed range\n";
  }
  return 0;
}
