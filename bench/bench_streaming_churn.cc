// Streaming engine under churn: estimates/sec while documents arrive and
// expire at configurable rates.
//
// Not a paper figure: this bench measures the streaming layer built on top
// of the reproduction. It maintains a sliding window over a synthetic DBLP
// corpus through a StreamingEstimationService and, for each churn rate c,
// alternates rounds of c mutations (expire the c oldest documents, admit c
// new ones) with one batch of streaming LSH-SS estimates across the
// standard thresholds. Reported per churn rate: mutations/sec of the
// dynamic ℓ-table maintenance, estimates/sec of the batch path, and the
// fraction of batch answers served from the epoch-keyed cache (0% whenever
// c > 0 — every mutation bumps the epoch, so nothing stale is reusable).
//
// The final row is the client fan-out scenario: VSJ_CLIENTS concurrent
// clients each submit the same standard-threshold sweep between churn
// bursts. Cross-request miss grouping computes each distinct (estimator, τ)
// once per batch and serves the other copies from the leader's response, so
// estimates/sec scales with the client count instead of paying a full
// re-sample per duplicate.
//
// Scale knobs (see bench_common.h): VSJ_N (corpus size, default 6000),
// VSJ_K (functions per table, default 12), VSJ_TRIALS (trials per request,
// default 2), VSJ_SEED; VSJ_TABLES (default 2), VSJ_ROUNDS (default 8),
// VSJ_CLIENTS (fan-out width, default 512).
// `--json <path>` (or VSJ_BENCH_JSON) writes per-churn-rate numbers as
// JSON.

#include <deque>
#include <iostream>
#include <vector>

#include "bench/bench_common.h"
#include "vsj/service/streaming_estimation_service.h"
#include "vsj/util/env.h"
#include "vsj/util/timer.h"

namespace {

std::vector<vsj::EstimateRequest> MakeBatch(size_t trials, uint64_t seed) {
  std::vector<vsj::EstimateRequest> batch;
  for (double tau : vsj::StandardThresholds()) {
    vsj::EstimateRequest request;
    request.estimator_name = "LSH-SS";
    request.tau = tau;
    request.trials = trials;
    request.seed = seed;
    batch.push_back(request);
  }
  return batch;
}

/// Expires the `churn` oldest live documents and admits the same number of
/// fresh arrivals, recycling expired ids on wraparound.
void ChurnWindow(vsj::StreamingEstimationService& service,
                 std::deque<vsj::VectorId>& live, vsj::VectorId& next,
                 size_t churn) {
  const auto universe = static_cast<vsj::VectorId>(service.dataset().size());
  for (size_t c = 0; c < churn; ++c) {
    service.Remove(live.front());
    live.pop_front();
    // Admit the next non-live id, recycling expired ids on wraparound.
    while (service.Contains(next)) next = (next + 1) % universe;
    service.Insert(next);
    live.push_back(next);
    next = (next + 1) % universe;
  }
}

}  // namespace

int main(int argc, char** argv) {
  const vsj::bench::Scale scale = vsj::bench::LoadScale(6000, 12, 2);
  vsj::bench::BenchJson json(argc, argv, "bench_streaming_churn");
  const auto tables =
      static_cast<uint32_t>(vsj::EnvInt64("VSJ_TABLES", 2));
  const auto rounds = static_cast<size_t>(vsj::EnvInt64("VSJ_ROUNDS", 8));
  const size_t window = scale.n / 2;
  std::cout << "streaming churn bench: n = " << scale.n << " (window "
            << window << "), k = " << scale.k << ", " << tables
            << " table(s), " << scale.trials << " trial(s)/request, "
            << rounds << " round(s)/rate\n\n";

  const vsj::CorpusConfig config = vsj::DblpLikeConfig(scale.n, scale.seed);
  const std::vector<vsj::EstimateRequest> batch =
      MakeBatch(scale.trials, scale.seed);

  vsj::TablePrinter report(
      "StreamingEstimationService under churn (LSH-SS, synthetic dblp)");
  report.SetHeader({"churn/round", "mutations/s", "batch ms", "estimates/s",
                    "cache hit rate"});

  for (const size_t churn : {size_t{0}, size_t{16}, size_t{128}, window / 4}) {
    vsj::StreamingEstimationServiceOptions options;
    options.k = scale.k;
    options.num_tables = tables;
    options.family_seed = scale.seed ^ 0x5eedULL;
    vsj::StreamingEstimationService service(vsj::GenerateCorpus(config),
                                            options);

    // Fill the window; the remaining ids are the arrival queue.
    std::deque<vsj::VectorId> live;
    vsj::VectorId next = 0;
    for (; next < window; ++next) {
      service.Insert(next);
      live.push_back(next);
    }

    double mutation_seconds = 0.0;
    double batch_seconds = 0.0;
    size_t estimates = 0;
    for (size_t round = 0; round < rounds; ++round) {
      vsj::Timer mutation_timer;
      ChurnWindow(service, live, next, churn);
      mutation_seconds += mutation_timer.ElapsedSeconds();

      vsj::Timer batch_timer;
      const auto responses = service.EstimateBatch(batch);
      batch_seconds += batch_timer.ElapsedSeconds();
      estimates += responses.size();
    }

    const vsj::EstimateCacheStats cache_stats = service.cache().stats();
    if (churn > 0) {
      json.Add("mutations_per_sec_churn" + std::to_string(churn),
               "mutations_per_sec",
               static_cast<double>(churn * rounds) / mutation_seconds,
               rounds);
    }
    json.Add("estimates_per_sec_churn" + std::to_string(churn),
             "estimates_per_sec",
             static_cast<double>(estimates) / batch_seconds, rounds);
    report.AddRow(
        {std::to_string(churn),
         churn == 0 ? "-"
                    : vsj::TablePrinter::Fmt(
                          static_cast<double>(churn * rounds) /
                              mutation_seconds,
                          0),
         vsj::TablePrinter::Fmt(batch_seconds * 1e3 /
                                    static_cast<double>(rounds),
                                1),
         vsj::TablePrinter::Fmt(static_cast<double>(estimates) /
                                    batch_seconds,
                                1),
         vsj::TablePrinter::Pct(cache_stats.HitRate())});
  }

  // Client fan-out: every round churns 16 documents (so the epoch bump
  // forces a full recompute — no stale cache hits) and then submits one
  // batch holding `clients` copies of the standard sweep. Miss grouping
  // elects one leader per distinct (estimator, τ) and the other clients
  // ride along.
  const auto clients =
      static_cast<size_t>(vsj::EnvInt64("VSJ_CLIENTS", 512));
  const size_t fan_churn = 16;
  {
    vsj::StreamingEstimationServiceOptions options;
    options.k = scale.k;
    options.num_tables = tables;
    options.family_seed = scale.seed ^ 0x5eedULL;
    vsj::StreamingEstimationService service(vsj::GenerateCorpus(config),
                                            options);
    std::deque<vsj::VectorId> live;
    vsj::VectorId next = 0;
    for (; next < window; ++next) {
      service.Insert(next);
      live.push_back(next);
    }
    std::vector<vsj::EstimateRequest> fan_batch;
    fan_batch.reserve(clients * batch.size());
    for (size_t c = 0; c < clients; ++c) {
      fan_batch.insert(fan_batch.end(), batch.begin(), batch.end());
    }

    double batch_seconds = 0.0;
    size_t estimates = 0;
    for (size_t round = 0; round < rounds; ++round) {
      ChurnWindow(service, live, next, fan_churn);
      vsj::Timer batch_timer;
      const auto responses = service.EstimateBatch(fan_batch);
      batch_seconds += batch_timer.ElapsedSeconds();
      estimates += responses.size();
    }

    json.Add("estimates_per_sec_fanout" + std::to_string(clients),
             "estimates_per_sec",
             static_cast<double>(estimates) / batch_seconds, rounds);
    report.AddRow(
        {std::to_string(fan_churn) + " x" + std::to_string(clients) +
             " clients",
         "-",
         vsj::TablePrinter::Fmt(batch_seconds * 1e3 /
                                    static_cast<double>(rounds),
                                1),
         vsj::TablePrinter::Fmt(static_cast<double>(estimates) /
                                    batch_seconds,
                                1),
         vsj::TablePrinter::Pct(service.cache().stats().HitRate())});
  }
  report.Print(std::cout);
  json.AddMetricsSnapshot();
  if (!json.Write()) return 1;
  std::cout << "\nchurned batches recompute (epoch invalidation); only the "
               "churn-0 row can hit the cache\n";
  return 0;
}
