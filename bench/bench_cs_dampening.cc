// Appendix C.3: impact of the dampened scale-up factor c_s.
//
// Compares LSH-SS (safe lower bound), fixed c_s ∈ {0.1, 0.5, 1.0} and the
// adaptive c_s = n_L/δ used by LSH-SS(D), reporting over/underestimation
// per threshold.
//
// Paper signatures: larger c_s reduces underestimation but causes
// overestimation with large variance (c_s = 1 gives +100%..900% at high
// thresholds; c_s = 0.1 keeps overestimation under ~62%); 0.1 ≤ c_s ≤ 0.5
// is the recommended range when variance matters.

#include <iostream>

#include "bench_common.h"
#include "vsj/util/hash.h"

int main() {
  using namespace vsj;
  using namespace vsj::bench;

  const Scale scale = LoadScale(/*default_n=*/20000);
  Workbench bench =
      BuildWorkbench(DblpLikeConfig(scale.n, scale.seed), scale.k);

  struct Variant {
    std::string label;
    DampeningMode mode;
    double cs;
  };
  const std::vector<Variant> variants = {
      {"safe lower bound", DampeningMode::kSafeLowerBound, 1.0},
      {"cs=0.1", DampeningMode::kFixedFactor, 0.1},
      {"cs=0.5", DampeningMode::kFixedFactor, 0.5},
      {"cs=1.0", DampeningMode::kFixedFactor, 1.0},
      {"cs=nL/delta (D)", DampeningMode::kAdaptiveNlOverDelta, 1.0},
  };

  TablePrinter over("Appendix C.3: mean overestimation (%) varying c_s");
  TablePrinter under("Appendix C.3: mean underestimation (%) varying c_s");
  std::vector<std::string> header = {"tau"};
  for (const auto& v : variants) header.push_back(v.label);
  over.SetHeader(header);
  under.SetHeader(header);

  for (double tau : StandardThresholds()) {
    const uint64_t true_j = bench.truth->JoinSize(tau);
    if (true_j == 0) continue;
    std::vector<std::string> over_row = {TablePrinter::Fmt(tau, 1)};
    std::vector<std::string> under_row = {TablePrinter::Fmt(tau, 1)};
    for (size_t v = 0; v < variants.size(); ++v) {
      LshSsOptions options;
      options.dampening = variants[v].mode;
      options.dampening_factor = variants[v].cs;
      LshSsEstimator estimator(bench.dataset, bench.index->table(0),
                               SimilarityMeasure::kCosine, options);
      const TrialSeries series = RunTrials(
          estimator, tau, scale.trials, HashCombine(scale.seed, v * 101));
      const ErrorStats stats = ComputeErrorStats(
          series.estimates, static_cast<double>(true_j));
      over_row.push_back(stats.num_overestimates == 0
                             ? "0.0%"
                             : TablePrinter::Pct(stats.mean_overestimation));
      under_row.push_back(
          stats.num_underestimates == 0
              ? "0.0%"
              : TablePrinter::Pct(stats.mean_underestimation));
    }
    over.AddRow(std::move(over_row));
    under.AddRow(std::move(under_row));
  }
  over.Print(std::cout);
  std::cout << "\n";
  under.Print(std::cout);
  return 0;
}
