// Runtime microbenchmarks (google-benchmark): the §6.2 runtime comparison
// (LSH-SS ≪ RS at paper scale; LSH-S and LC slower) and the Appendix C.1
// index build times, at bench scale.
//
// Paper numbers (DBLP, n = 794K, Java): LSH-SS < 750 ms, LSH-S ≈ 1 s,
// LC ≈ 3 s, RS ≈ 780 s (RS compares m = 1.5n full-vector pairs without an
// index; the gap shrinks at small n but the ordering holds).

#include <benchmark/benchmark.h>

#include "bench_common.h"

namespace {

using vsj::bench::BuildWorkbench;
using vsj::bench::MakeContext;
using vsj::bench::Scale;

struct Fixture {
  Fixture() {
    const Scale scale = vsj::bench::LoadScale(/*default_n=*/10000);
    bench = std::make_unique<vsj::bench::Workbench>(
        BuildWorkbench(vsj::DblpLikeConfig(scale.n, scale.seed), scale.k));
  }
  std::unique_ptr<vsj::bench::Workbench> bench;
};

Fixture& GetFixture() {
  static Fixture* fixture = new Fixture();
  return *fixture;
}

void EstimationRuntime(benchmark::State& state, const char* name,
                       double tau) {
  Fixture& fixture = GetFixture();
  const vsj::EstimatorContext context = MakeContext(*fixture.bench);
  auto estimator = vsj::CreateEstimator(name, context);
  uint64_t seed = 0;
  for (auto _ : state) {
    vsj::Rng rng(++seed);
    benchmark::DoNotOptimize(estimator->Estimate(tau, rng));
  }
}

void BM_LshSs(benchmark::State& state) {
  EstimationRuntime(state, "LSH-SS", 0.5);
}
void BM_LshSsD(benchmark::State& state) {
  EstimationRuntime(state, "LSH-SS(D)", 0.5);
}
void BM_LshS(benchmark::State& state) {
  EstimationRuntime(state, "LSH-S", 0.5);
}
void BM_RsPop(benchmark::State& state) {
  EstimationRuntime(state, "RS(pop)", 0.5);
}
void BM_RsCross(benchmark::State& state) {
  EstimationRuntime(state, "RS(cross)", 0.5);
}
void BM_Ju(benchmark::State& state) { EstimationRuntime(state, "J_U", 0.5); }

void BM_LatticeCountingBuildAndEstimate(benchmark::State& state) {
  // LC's cost is dominated by the signature analysis at build time.
  Fixture& fixture = GetFixture();
  for (auto _ : state) {
    vsj::LatticeCountingEstimator lc(fixture.bench->dataset,
                                     *fixture.bench->family, {});
    vsj::Rng rng(1);
    benchmark::DoNotOptimize(lc.Estimate(0.5, rng));
  }
}

void BM_LshIndexBuild(benchmark::State& state) {
  // Appendix C.1: "it takes 4.7/4.6/5.6 seconds to build LSH indexes".
  Fixture& fixture = GetFixture();
  const auto k = static_cast<uint32_t>(state.range(0));
  for (auto _ : state) {
    vsj::LshTable table(*fixture.bench->family, fixture.bench->dataset, k);
    benchmark::DoNotOptimize(table.NumSameBucketPairs());
  }
  state.counters["buckets"] = static_cast<double>(
      vsj::LshTable(*fixture.bench->family, fixture.bench->dataset, k)
          .num_buckets());
}

void BM_GroundTruthHistogram(benchmark::State& state) {
  Fixture& fixture = GetFixture();
  for (auto _ : state) {
    vsj::SimilarityHistogram hist(fixture.bench->dataset,
                                  vsj::SimilarityMeasure::kCosine, {0.5});
    benchmark::DoNotOptimize(hist.CountAtLeast(0.5));
  }
}

BENCHMARK(BM_LshSs)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_LshSsD)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_LshS)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_RsPop)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_RsCross)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Ju)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_LatticeCountingBuildAndEstimate)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_LshIndexBuild)->Arg(10)->Arg(20)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_GroundTruthHistogram)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
