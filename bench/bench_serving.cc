// Loopback throughput of the network serving layer (src/vsj/net).
//
// Not a paper figure: this bench measures the serving stack end to end —
// epoll loop, length-prefixed JSON protocol, per-tenant queues and
// cross-connection EstimateBatchShared batching — against an in-process
// vsj::net::Server on an ephemeral loopback port. The workload is the
// serving sweet spot the layer is built for: many connections issuing
// estimate RPCs against one churn-style streaming tenant with a small set
// of popular thresholds, so the sharded EstimateCache absorbs repeats and
// concurrent connections amortize into shared batches.
//
// For each connection count it runs a closed-loop pipelined load (every
// connection keeps `kPipeline` requests outstanding), reports estimates/s,
// client-observed p50/p99 latency and the server's mean cross-connection
// batch size, and cross-checks that two connections asking the same
// question get byte-identical payloads (the packing-independence
// contract of EstimateBatchShared).
//
// Scale knobs (see bench_common.h): VSJ_N (corpus size, default 4000),
// VSJ_K, VSJ_TRIALS (trials per request, default 3), VSJ_SEED; plus
// VSJ_REQS (requests per connection, default 400). `--json PATH` (or
// VSJ_BENCH_JSON) writes the headline rows as BENCH_serving.json.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "vsj/net/server.h"
#include "vsj/net/wire.h"
#include "vsj/obs/metrics.h"
#include "vsj/obs/obs.h"
#include "vsj/service/streaming_estimation_service.h"
#include "vsj/service/tenant_registry.h"
#include "vsj/util/timer.h"

namespace {

constexpr size_t kPipeline = 8;  // outstanding requests per connection

// The popular-threshold mix: mostly duplicates, so steady state is cache
// hits plus the occasional recompute.
const std::vector<double> kTaus = {0.5, 0.6, 0.7, 0.8};

uint64_t MonotonicNs() {
  timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<uint64_t>(ts.tv_sec) * 1000000000ull +
         static_cast<uint64_t>(ts.tv_nsec);
}

int DialLoopback(uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

std::string EncodeEstimate(uint64_t id, double tau, size_t trials,
                           uint64_t seed) {
  char body[256];
  std::snprintf(body, sizeof(body),
                "{\"id\":%llu,\"op\":\"estimate\",\"tenant\":\"churn\","
                "\"estimator\":\"LSH-SS\",\"tau\":%.3f,\"trials\":%zu,"
                "\"seed\":%llu}",
                static_cast<unsigned long long>(id), tau, trials,
                static_cast<unsigned long long>(seed));
  std::string frame;
  vsj::net::AppendFrame(&frame, body);
  return frame;
}

/// Sends every frame in `frames` over one blocking connection keeping
/// `pipeline` outstanding, recording client-observed latency per request.
/// Returns false on any transport error or `"ok":false` response.
bool RunConnection(uint16_t port, const std::vector<std::string>& frames,
                   size_t pipeline, vsj::obs::Histogram* latency) {
  const int fd = DialLoopback(port);
  if (fd < 0) return false;
  vsj::net::FrameDecoder decoder(1u << 20);
  std::vector<uint64_t> sent_ns(frames.size(), 0);
  size_t next_send = 0;
  size_t received = 0;
  bool ok = true;
  char buf[64 * 1024];

  const auto send_one = [&]() -> bool {
    const std::string& f = frames[next_send];
    sent_ns[next_send] = MonotonicNs();
    ++next_send;
    for (size_t off = 0; off < f.size();) {
      const ssize_t n = ::write(fd, f.data() + off, f.size() - off);
      if (n <= 0) return false;
      off += static_cast<size_t>(n);
    }
    return true;
  };

  for (size_t i = 0; i < pipeline && next_send < frames.size(); ++i) {
    if (!send_one()) ok = false;
  }
  while (ok && received < frames.size()) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n <= 0) {
      ok = false;
      break;
    }
    decoder.Feed(std::string_view(buf, static_cast<size_t>(n)));
    std::string_view payload;
    vsj::net::FrameDecoder::Status status;
    while ((status = decoder.Next(&payload)) ==
           vsj::net::FrameDecoder::Status::kFrame) {
      // Responses come back in send order on a single connection (one
      // tenant, FIFO queue), so the send timestamp is just `received`.
      if (payload.find("\"ok\":true") == std::string_view::npos) ok = false;
      latency->Record(MonotonicNs() - sent_ns[received]);
      ++received;
      if (next_send < frames.size() && !send_one()) ok = false;
    }
    if (status == vsj::net::FrameDecoder::Status::kTooLarge) ok = false;
  }
  ::close(fd);
  return ok && received == frames.size();
}

/// One request/response over a fresh connection; returns the raw payload.
std::string AskOnce(uint16_t port, const std::string& frame) {
  const int fd = DialLoopback(port);
  if (fd < 0) return {};
  for (size_t off = 0; off < frame.size();) {
    const ssize_t n = ::write(fd, frame.data() + off, frame.size() - off);
    if (n <= 0) {
      ::close(fd);
      return {};
    }
    off += static_cast<size_t>(n);
  }
  vsj::net::FrameDecoder decoder(1u << 20);
  char buf[8192];
  std::string result;
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n <= 0) break;
    decoder.Feed(std::string_view(buf, static_cast<size_t>(n)));
    std::string_view payload;
    if (decoder.Next(&payload) == vsj::net::FrameDecoder::Status::kFrame) {
      result.assign(payload);
      break;
    }
  }
  ::close(fd);
  return result;
}

size_t EnvSize(const char* name, size_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return static_cast<size_t>(std::strtoull(v, nullptr, 10));
}

}  // namespace

int main(int argc, char** argv) {
  const vsj::bench::Scale scale = vsj::bench::LoadScale(4000, 20, 3);
  const size_t reqs_per_conn = EnvSize("VSJ_REQS", 400);
  std::cout << "serving bench: n = " << scale.n << ", k = " << scale.k
            << ", " << scale.trials << " trial(s)/request, "
            << reqs_per_conn << " requests/connection, pipeline "
            << kPipeline << "\n\n";
  vsj::bench::BenchJson json(argc, argv, "bench_serving");
  vsj::obs::EnableMetrics(true);

  // Build the churn tenant: a streaming engine with every vector live,
  // checkpointed into a throwaway snapshot root the registry serves from.
  char root_template[] = "/tmp/vsj_bench_serving_XXXXXX";
  const char* root = ::mkdtemp(root_template);
  if (root == nullptr) {
    std::cerr << "mkdtemp failed\n";
    return 1;
  }
  {
    vsj::StreamingEstimationServiceOptions streaming_options;
    streaming_options.k = scale.k;
    streaming_options.family_seed = scale.seed ^ 0x5eedULL;
    vsj::StreamingEstimationService engine(
        vsj::GenerateCorpus(vsj::DblpLikeConfig(scale.n, scale.seed)),
        streaming_options);
    for (size_t id = 0; id < scale.n; ++id) {
      engine.Insert(static_cast<vsj::VectorId>(id));
    }
    const vsj::IoStatus status =
        engine.Checkpoint(std::string(root) + "/churn.vsjs");
    if (!status.ok()) {
      std::cerr << "checkpoint failed: " << status.ToString() << "\n";
      return 1;
    }
  }

  vsj::TenantRegistryOptions registry_options;
  registry_options.root = root;
  registry_options.streaming_options.num_threads = 2;
  vsj::TenantRegistry registry(registry_options);

  vsj::net::ServerOptions server_options;
  server_options.port = 0;
  server_options.num_workers = 2;
  server_options.max_batch = 64;
  server_options.registry = &registry;
  vsj::net::Server server(server_options);
  const vsj::IoStatus status = server.Start();
  if (!status.ok()) {
    std::cerr << "server start failed: " << status.ToString() << "\n";
    return 1;
  }

  // Packing-independence spot check: the same question on two fresh
  // connections (different batch packings, by construction) must yield
  // byte-identical payloads, modulo the from_cache marker (the second ask
  // is a cache hit by design).
  const auto strip_cache_marker = [](std::string payload) {
    const size_t pos = payload.find(",\"from_cache\":");
    if (pos != std::string::npos) {
      payload.erase(pos, payload.find_first_of(",}", pos + 1) - pos);
    }
    return payload;
  };
  const std::string probe = EncodeEstimate(1, kTaus[0], scale.trials,
                                           scale.seed);
  const std::string first = strip_cache_marker(AskOnce(server.port(), probe));
  const std::string second =
      strip_cache_marker(AskOnce(server.port(), probe));
  if (first.empty() || first != second) {
    std::cerr << "DETERMINISM VIOLATION: repeated request differed\n"
              << "  first:  " << first << "\n  second: " << second << "\n";
    return 1;
  }

  vsj::TablePrinter report(
      "loopback serving throughput (churn tenant, LSH-SS)");
  report.SetHeader({"conns", "requests", "elapsed ms", "estimates/s",
                    "p50 us", "p99 us", "batch mean"});

  bool failed = false;
  for (const size_t conns : {size_t{1}, size_t{8}, size_t{64}}) {
    // Per-connection request streams; ids only matter per connection.
    std::vector<std::vector<std::string>> frames(conns);
    for (size_t c = 0; c < conns; ++c) {
      frames[c].reserve(reqs_per_conn);
      for (size_t i = 0; i < reqs_per_conn; ++i) {
        frames[c].push_back(EncodeEstimate(
            i, kTaus[(c + i) % kTaus.size()], scale.trials, scale.seed));
      }
    }

    auto& batch_hist =
        vsj::obs::MetricRegistry::Global().GetHistogram("server.batch_size");
    batch_hist.Reset();
    auto latency = std::make_unique<vsj::obs::Histogram>();
    std::atomic<size_t> errors{0};

    vsj::Timer timer;
    std::vector<std::thread> threads;
    threads.reserve(conns);
    for (size_t c = 0; c < conns; ++c) {
      threads.emplace_back([&, c] {
        if (!RunConnection(server.port(), frames[c], kPipeline,
                           latency.get())) {
          errors.fetch_add(1);
        }
      });
    }
    for (auto& t : threads) t.join();
    const double elapsed = timer.ElapsedSeconds();

    if (errors.load() != 0) {
      std::cerr << errors.load() << " connection(s) failed at " << conns
                << " conns\n";
      failed = true;
      continue;
    }

    const size_t total = conns * reqs_per_conn;
    const double rate = static_cast<double>(total) / elapsed;
    const vsj::obs::HistogramSnapshot lat = latency->Snapshot();
    const double p50_us =
        static_cast<double>(lat.ValueAtPercentile(50)) / 1e3;
    const double p99_us =
        static_cast<double>(lat.ValueAtPercentile(99)) / 1e3;
    const double batch_mean = batch_hist.Snapshot().Mean();

    report.AddRow({std::to_string(conns), std::to_string(total),
                   vsj::TablePrinter::Fmt(elapsed * 1e3, 1),
                   vsj::TablePrinter::Fmt(rate, 0),
                   vsj::TablePrinter::Fmt(p50_us, 1),
                   vsj::TablePrinter::Fmt(p99_us, 1),
                   vsj::TablePrinter::Fmt(batch_mean, 2)});

    const std::string suffix = "_conn" + std::to_string(conns);
    json.Add("estimates_per_sec" + suffix, "estimates_per_sec", rate, total);
    json.Add("latency_p50_us" + suffix, "us", p50_us, total);
    json.Add("latency_p99_us" + suffix, "us", p99_us, total);
    json.Add("batch_size_mean" + suffix, "requests", batch_mean, total);
  }
  report.Print(std::cout);
  std::cout << "\nrepeated requests returned byte-identical payloads\n";

  server.BeginDrain();
  server.WaitUntilStopped();
  // Throwaway snapshot root; remove what this bench created.
  ::remove((std::string(root) + "/churn.vsjs").c_str());
  ::rmdir(root);

  json.AddMetricsSnapshot();
  if (!json.Write()) return 1;
  return failed ? 1 : 0;
}
