// Appendix B.2.1 (extension): multi-table estimators — the median estimator
// and the virtual-bucket estimator — ablated against single-table LSH-SS.
//
// Expected behavior per the paper's analysis: the median (with a per-table
// budget equal to the single-table budget, i.e. an ℓ-fold total sample)
// deviates less often; virtual buckets enlarge stratum H and help when k is
// overly selective.

#include <iostream>

#include "bench_common.h"
#include "vsj/core/median_estimator.h"
#include "vsj/core/virtual_bucket_estimator.h"
#include "vsj/util/hash.h"

int main() {
  using namespace vsj;
  using namespace vsj::bench;

  const Scale scale = LoadScale(/*default_n=*/10000, /*default_k=*/20,
                                /*default_trials=*/30);
  const uint32_t num_tables = 5;
  Workbench bench = BuildWorkbench(DblpLikeConfig(scale.n, scale.seed),
                                   scale.k, num_tables);

  LshSsEstimator single(bench.dataset, bench.index->table(0),
                        SimilarityMeasure::kCosine);
  MedianEstimator median(bench.dataset, *bench.index,
                         SimilarityMeasure::kCosine);
  VirtualBucketEstimator vbucket(bench.dataset, *bench.index,
                                 SimilarityMeasure::kCosine);
  const JoinSizeEstimator* estimators[] = {&single, &median, &vbucket};

  std::cout << "# stratum H sizes: single table N_H = "
            << bench.index->table(0).NumSameBucketPairs()
            << ", virtual (union over " << num_tables
            << " tables) N_H = " << vbucket.NumVirtualSameBucketPairs()
            << "\n\n";

  TablePrinter table("Appendix B.2.1: multi-table estimators (" +
                     std::to_string(num_tables) + " tables)");
  table.SetHeader({"tau", "true J", "LSH-SS over/under",
                   "median over/under", "vbucket over/under"});
  for (double tau : StandardThresholds()) {
    const uint64_t true_j = bench.truth->JoinSize(tau);
    if (true_j == 0) continue;
    std::vector<std::string> row = {
        TablePrinter::Fmt(tau, 1),
        TablePrinter::Count(static_cast<double>(true_j))};
    for (size_t e = 0; e < 3; ++e) {
      const TrialSeries series =
          RunTrials(*estimators[e], tau, scale.trials,
                    HashCombine(scale.seed, e * 7919));
      const ErrorStats stats = ComputeErrorStats(
          series.estimates, static_cast<double>(true_j));
      row.push_back(TablePrinter::Pct(stats.mean_overestimation) + " / " +
                    TablePrinter::Pct(stats.mean_underestimation));
    }
    table.AddRow(std::move(row));
  }
  table.Print(std::cout);

  // Reliability: large deviations (off by more than 3x) per estimator.
  TablePrinter reliability("Large deviations (estimate off by > 3x), "
                           "summed over thresholds");
  reliability.SetHeader({"estimator", "# trials off > 3x"});
  const char* names[] = {"LSH-SS (1 table)", "median", "virtual bucket"};
  for (size_t e = 0; e < 3; ++e) {
    size_t large = 0;
    for (double tau : StandardThresholds()) {
      const uint64_t true_j = bench.truth->JoinSize(tau);
      if (true_j == 0) continue;
      const TrialSeries series =
          RunTrials(*estimators[e], tau, scale.trials,
                    HashCombine(scale.seed, e * 7919));
      for (double est : series.estimates) {
        if (est > 3.0 * static_cast<double>(true_j) ||
            est < static_cast<double>(true_j) / 3.0) {
          ++large;
        }
      }
    }
    reliability.AddRow({names[e], std::to_string(large)});
  }
  std::cout << "\n";
  reliability.Print(std::cout);
  return 0;
}
